"""Adaptive policies and controller."""

import pytest

from repro.adaptive import (
    AdaptiveController,
    DetectionDrivenPolicy,
    RankTuningPolicy,
    TrainingParallelismPolicy,
    UtilizationAwarePlacement,
)
from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.workloads import OpenFOAMParams


class TestRankTuningPolicy:
    def test_no_data_no_recommendation(self):
        assert RankTuningPolicy().recommend() is None

    def test_efficiency_weighted_choice(self):
        # Perfect scaling up to 82 ranks, saturation at 164.
        policy = RankTuningPolicy(speedup_weight=0.0)
        params = OpenFOAMParams()
        import math

        for ranks in (20, 41, 82, 164):
            policy.observe(ranks, params.ideal_time(ranks, math.ceil(ranks / 41)))
        choice = policy.recommend()
        # Pure efficiency: the smallest config has the lowest
        # core-seconds (comm overhead grows with ranks).
        assert choice == 20

    def test_speed_weighted_choice(self):
        policy = RankTuningPolicy(speedup_weight=1.0)
        import math

        params = OpenFOAMParams()
        for ranks in (20, 41, 82, 164):
            policy.observe(ranks, params.ideal_time(ranks, math.ceil(ranks / 41)))
        assert policy.recommend() == 164  # fastest wall time

    def test_blended_choice_prefers_knee(self):
        policy = RankTuningPolicy(speedup_weight=0.35)
        import math

        params = OpenFOAMParams()
        for ranks in (20, 41, 82, 164):
            policy.observe(ranks, params.ideal_time(ranks, math.ceil(ranks / 41)))
        # The knee of the curve: scaling past 82 barely helps (Fig 4).
        assert policy.recommend() in (41, 82)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            RankTuningPolicy(speedup_weight=2.0)

    def test_mean_times_aggregates(self):
        policy = RankTuningPolicy()
        policy.observe(20, 100.0)
        policy.observe(20, 110.0)
        assert policy.mean_times() == {20: 105.0}


class TestTrainingParallelismPolicy:
    def test_low_headroom_stays_serial(self):
        policy = TrainingParallelismPolicy()
        assert policy.recommend({"cn0001": 0.2}, free_gpus=6) == 1

    def test_high_headroom_parallelizes(self):
        policy = TrainingParallelismPolicy()
        workers = policy.recommend({"cn0001": 0.95, "cn0002": 0.9}, free_gpus=6)
        assert workers > 1

    def test_gpu_limit_respected(self):
        policy = TrainingParallelismPolicy()
        workers = policy.recommend({"cn0001": 0.95}, free_gpus=2)
        assert workers <= 2

    def test_no_data_stays_serial(self):
        assert TrainingParallelismPolicy().recommend({}, free_gpus=6) == 1

    def test_reduce_overhead_caps_workers(self):
        # Enormous reduce cost: parallelism never pays.
        policy = TrainingParallelismPolicy(reduce_seconds=1000.0)
        assert policy.recommend({"cn0001": 0.99}, free_gpus=6) == 1


class TestUtilizationAwarePlacement:
    def test_orders_by_pressure(self, env):
        from repro.platform import Cluster

        cluster = Cluster(env, summit_like(3))
        # Load node 0 heavily, node 1 lightly, node 2 idle.
        cluster.nodes[0].run_compute(cores=30, work=1000.0, mem_intensity=0.9)
        cluster.nodes[1].run_compute(cores=5, work=1000.0, mem_intensity=0.9)
        ranked = UtilizationAwarePlacement()(cluster.nodes)
        assert ranked[0] is cluster.nodes[2]
        assert ranked[-1] is cluster.nodes[0]


class TestController:
    @pytest.fixture
    def stack(self):
        from repro.soma import SomaConfig, deploy_soma

        session = Session(cluster_spec=summit_like(4), seed=3)
        client = Client(session)
        env = session.env
        box = {}

        def main(env):
            pilot = yield from client.submit_pilot(
                PilotDescription(nodes=2, agent_nodes=1)
            )
            box["deployment"] = yield from deploy_soma(
                client,
                pilot,
                SomaConfig(
                    namespaces=("workflow", "hardware"),
                    monitors=("proc",),
                    monitoring_frequency=20.0,
                ),
            )

        env.run(env.process(main(env)))
        return session, client, box["deployment"]

    def test_observe_and_recommend(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(
                        name=f"t{r}", model=FixedDurationModel(600.0 / r),
                        ranks=r,
                    )
                    for r in (10, 20)
                ]
            )
            yield from client.wait_tasks(tasks)
            controller.observe_tasks(tasks)
            return controller.recommended_ranks()

        choice = env.run(env.process(main(env)))
        assert choice in (10, 20)
        assert controller.decisions
        client.close()

    def test_training_recommendation_uses_live_data(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        env = session.env

        def main(env):
            yield env.timeout(65)  # let hardware samples accumulate
            return controller.recommend_training_workers(window=100.0)

        workers = env.run(env.process(main(env)))
        # Idle machine: high headroom, plenty of GPUs -> parallel.
        assert workers > 1
        client.close()

    def test_placement_hook_install(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        controller.enable_utilization_aware_placement()
        assert client.agent.scheduler._node_ranker is not None
        controller.disable_utilization_aware_placement()
        assert client.agent.scheduler._node_ranker is None
        client.close()

    def test_recommended_ranks_dedupes_unchanged_choice(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        controller.rank_policy.observe(20, 100.0)
        controller.rank_policy.observe(41, 80.0)
        first = controller.recommended_ranks()
        assert first is not None
        for _ in range(5):  # polling must not flood the decision log
            assert controller.recommended_ranks() == first
        rank_decisions = [
            d for d in controller.decisions if d["kind"] == "rank_tuning"
        ]
        assert len(rank_decisions) == 1
        client.close()

    def test_placement_transitions_logged_once_each(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        controller.disable_utilization_aware_placement()  # no-op: never on
        controller.enable_utilization_aware_placement()
        controller.enable_utilization_aware_placement()
        controller.disable_utilization_aware_placement()
        controller.disable_utilization_aware_placement()
        placement = [
            d["policy"] for d in controller.decisions
            if d["kind"] == "placement"
        ]
        assert placement == ["utilization-aware", "default"]
        client.close()

    def test_apply_findings_closes_the_loop(self, stack):
        session, client, deployment = stack
        controller = AdaptiveController(client, deployment)
        healthy = controller.apply_findings([])
        # 1 compute node x 6 GPUs, no adverse findings: fan out.
        assert healthy["training_workers"] == 6
        assert healthy["monitor_period"] == pytest.approx(20.0)
        controller.apply_findings([])  # unchanged outcome: no new entry
        congested = controller.apply_findings(["rpc_queueing"])
        assert congested["training_workers"] == 6
        assert congested["monitor_period"] == pytest.approx(40.0)
        starved = controller.apply_findings(["scheduler_starvation"])
        assert starved["training_workers"] == 1
        detections = [
            d for d in controller.decisions if d["kind"] == "detection"
        ]
        assert len(detections) == 3
        assert detections[1]["findings"] == ["rpc_queueing"]
        client.close()


class TestDetectionDrivenPolicy:
    def test_healthy_run_fans_out_to_modeled_best(self):
        policy = DetectionDrivenPolicy()
        # 260/6 + 7*log2(7) beats every smaller worker count.
        assert policy.recommend_training_workers([], free_gpus=12) == 6

    def test_gpu_budget_caps_fan_out(self):
        policy = DetectionDrivenPolicy()
        assert policy.recommend_training_workers([], free_gpus=3) == 3
        assert policy.recommend_training_workers([], free_gpus=0) == 1

    def test_reduce_overhead_can_beat_fan_out(self):
        policy = DetectionDrivenPolicy(
            reduce_seconds=200.0, train_gpu_seconds=260.0
        )
        assert policy.recommend_training_workers([], free_gpus=12) == 1

    @pytest.mark.parametrize(
        "kind", ("cpu_oversubscription", "scheduler_starvation")
    )
    def test_capacity_pressure_forces_serial(self, kind):
        policy = DetectionDrivenPolicy()
        assert policy.recommend_training_workers([kind], free_gpus=12) == 1

    def test_finding_objects_and_strings_both_accepted(self):
        from repro.analysis.bottleneck import Finding

        finding = Finding(
            kind="cpu_oversubscription",
            detector="cpu-oversubscription",
            where="cn0002",
            start=0.0,
            end=300.0,
            severity=2.0,
            evidence={},
            threshold={},
            action="",
        )
        policy = DetectionDrivenPolicy()
        assert policy.recommend_training_workers([finding], free_gpus=12) == 1

    def test_queueing_backs_off_monitoring(self):
        policy = DetectionDrivenPolicy()
        assert policy.recommend_monitor_period(
            ["rpc_queueing"], current=60.0
        ) == pytest.approx(120.0)
        # Capped at the maximum period.
        assert policy.recommend_monitor_period(
            ["rpc_queueing"], current=200.0
        ) == pytest.approx(240.0)

    def test_quiet_run_keeps_period_floored(self):
        policy = DetectionDrivenPolicy()
        assert policy.recommend_monitor_period([], current=60.0) == 60.0
        assert policy.recommend_monitor_period([], current=1.0) == 10.0
