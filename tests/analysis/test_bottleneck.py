"""Bottleneck detectors: unit rules on synthetic stores + the battery.

The unit tests drive each detector over hand-built namespace stores
with known truths; the battery tests run the named scenarios end to
end and check the detectors agree with each scenario's planted truth
— zero findings on the clean calibration runs, exactly the expected
kind on each fault run.
"""

import pytest

from repro.analysis.bottleneck import (
    CLEAN_SCENARIOS,
    DEFAULT_THRESHOLDS,
    KINDS,
    SCENARIOS,
    DetectionContext,
    Finding,
    Thresholds,
    detect_all,
    observe_all,
    render_findings,
    run_scenario,
)
from repro.analysis.bottleneck.detectors import (
    CpuOversubscriptionDetector,
    LoadImbalanceDetector,
    RpcQueueingDetector,
    SchedulerStarvationDetector,
)
from repro.conduit import Node
from repro.soma import NamespaceStore
from repro.soma.namespaces import HARDWARE, PERFORMANCE, WORKFLOW


def hw_store(samples):
    """``samples``: iterable of (time, host, cpu_utilization)."""
    store = NamespaceStore(HARDWARE)
    for t, host, util in samples:
        tree = Node()
        base = f"PROC/{host}/{t:.6f}"
        tree[f"{base}/cpu_utilization"] = util
        tree[f"{base}/gpu_utilization"] = 0.2
        store.append(t, f"hwmon@{host}", tree)
    return store


def wf_store(series):
    """``series``: iterable of (time, source, done, pending)."""
    store = NamespaceStore(WORKFLOW)
    for t, source, done, pending in series:
        tree = Node()
        tree["RP/summary/timestamp"] = t
        tree["RP/summary/tasks_seen"] = 20
        tree["RP/summary/done"] = done
        tree["RP/summary/failed"] = 0
        tree["RP/summary/running"] = 2
        tree["RP/summary/pending"] = pending
        store.append(t, source, tree)
    return store


def tau_store(rank_compute, uid="task.000042", at=500.0):
    store = NamespaceStore(PERFORMANCE)
    tree = Node()
    total = max(rank_compute) + 5.0
    for rank, compute in enumerate(rank_compute):
        base = f"TAU/{uid}/cn0002/rank{rank:05d}"
        tree[f"{base}/solve"] = compute
        tree[f"{base}/MPI_Allreduce"] = total - compute
    store.append(at, f"tau@{uid}", tree)
    return store


def make_ctx(now=3000.0, stores=None, server_stats=None):
    return DetectionContext(
        now=now, stores=stores or {}, server_stats=server_stats or {}
    )


class TestCpuOversubscriptionDetector:
    detector = CpuOversubscriptionDetector()

    def saturated(self, host="cn0002", level=0.95, n=11, period=30.0):
        return [(i * period, host, level) for i in range(n)]

    def test_sustained_saturation_fires(self):
        ctx = make_ctx(stores={HARDWARE: hw_store(self.saturated())})
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["cn0002"]
        f = findings[0]
        assert f.kind == "cpu_oversubscription"
        assert f.window == (0.0, 300.0)
        assert f.evidence["sustained_seconds"] == pytest.approx(300.0)
        assert f.severity == pytest.approx(
            300.0 / DEFAULT_THRESHOLDS.cpu_sustained_seconds
        )

    def test_short_spike_ignored(self):
        # Three saturated samples spanning 60 s: a real spike, but far
        # below the calibrated sustained threshold.
        ctx = make_ctx(stores={HARDWARE: hw_store(self.saturated(n=3))})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []
        assert self.detector.observe(ctx) == pytest.approx(60.0)

    def test_busy_but_unsaturated_ignored(self):
        samples = [(i * 30.0, "cn0002", 0.85) for i in range(20)]
        ctx = make_ctx(stores={HARDWARE: hw_store(samples)})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []
        assert self.detector.observe(ctx) == 0.0

    def test_interrupted_run_resets(self):
        # 5 saturated, one idle dip, 5 saturated: two 120 s runs, not
        # one 330 s run.
        samples = self.saturated(n=11)
        samples[5] = (150.0, "cn0002", 0.1)
        ctx = make_ctx(stores={HARDWARE: hw_store(samples)})
        assert self.detector.observe(ctx) == pytest.approx(120.0)
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []

    def test_no_hardware_store_is_quiet(self):
        ctx = make_ctx()
        assert self.detector.observe(ctx) == 0.0
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []


class TestRpcQueueingDetector:
    detector = RpcQueueingDetector()

    def stats(self, mean_queue, calls=200):
        return {
            "ranks": 1,
            "calls": calls,
            "errors": 0,
            "mean_queue_seconds": mean_queue,
            "busy_seconds": 0.02 * calls,
        }

    def test_saturated_namespace_fires(self):
        ctx = make_ctx(
            server_stats={
                "hardware": self.stats(1.5),
                "workflow": self.stats(0.001),
            }
        )
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["soma.hardware"]
        assert findings[0].severity == pytest.approx(
            1.5 / DEFAULT_THRESHOLDS.rpc_mean_queue_seconds
        )
        assert findings[0].evidence["mean_service_seconds"] == pytest.approx(
            0.02
        )
        assert self.detector.observe(ctx) == pytest.approx(1.5)

    def test_idle_namespace_ignored(self):
        ctx = make_ctx(server_stats={"workflow": self.stats(9.9, calls=0)})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []
        assert self.detector.observe(ctx) == 0.0

    def test_prefers_windowed_peak_over_diluted_mean(self):
        # A ten-minute burst diluted into a long run: lifetime mean
        # looks clean but the windowed peak carries the saturation.
        burst = dict(
            self.stats(0.005), peak_window_queue_seconds=2.0
        )
        ctx = make_ctx(server_stats={"hardware": burst})
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["soma.hardware"]
        assert self.detector.observe(ctx) == pytest.approx(2.0)
        # Without the windowed field the diluted mean stays quiet —
        # exactly the blind spot the windowed ServerStats closes.
        ctx = make_ctx(server_stats={"hardware": self.stats(0.005)})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []


class TestLoadImbalanceDetector:
    detector = LoadImbalanceDetector()

    def test_straggler_rank_fires(self):
        # compute [40, 10, 10, 10, 10]: max/mean = 40/16 = 2.5.
        store = tau_store([40.0, 10.0, 10.0, 10.0, 10.0])
        ctx = make_ctx(stores={PERFORMANCE: store})
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["task.000042"]
        f = findings[0]
        assert f.evidence["imbalance"] == pytest.approx(2.5)
        assert f.evidence["ranks"] == 5
        assert f.evidence["max_compute_seconds"] == pytest.approx(40.0)
        assert f.window == (500.0, 500.0)
        assert self.detector.observe(ctx) == pytest.approx(2.5)

    def test_balanced_ranks_quiet(self):
        store = tau_store([10.0, 11.0, 10.5, 10.2])
        ctx = make_ctx(stores={PERFORMANCE: store})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []

    def test_mpi_wait_does_not_count_as_compute(self):
        # Total per-rank time is flat (fast ranks sit in MPI_Allreduce);
        # only the compute split should drive the ratio.
        store = tau_store([30.0, 10.0])  # totals are 35 for both ranks
        ctx = make_ctx(stores={PERFORMANCE: store})
        assert self.detector.observe(ctx) == pytest.approx(1.5)


class TestSchedulerStarvationDetector:
    detector = SchedulerStarvationDetector()

    def stalled_series(self, source="rpmon", stall_samples=10):
        series = [(60.0, source, 0, 12), (120.0, source, 4, 10)]
        for i in range(stall_samples):
            series.append((180.0 + i * 60.0, source, 4, 10))
        series.append((180.0 + stall_samples * 60.0, source, 14, 0))
        return series

    def test_frozen_done_with_pending_fires(self):
        ctx = make_ctx(stores={WORKFLOW: wf_store(self.stalled_series())})
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["rpmon"]
        f = findings[0]
        assert f.window == (120.0, 720.0)
        assert f.evidence["stall_seconds"] == pytest.approx(600.0)
        assert f.evidence["max_pending"] == pytest.approx(10.0)

    def test_progressing_run_quiet(self):
        series = [(60.0 * i, "rpmon", i, 10 - i) for i in range(10)]
        ctx = make_ctx(stores={WORKFLOW: wf_store(series)})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []
        assert self.detector.observe(ctx) == 0.0

    def test_drained_queue_is_not_starvation(self):
        # done frozen but nothing pending: the run is just idle.
        series = [(60.0 * i, "rpmon", 5, 0) for i in range(12)]
        ctx = make_ctx(stores={WORKFLOW: wf_store(series)})
        assert self.detector.detect(ctx, DEFAULT_THRESHOLDS) == []

    def test_sources_tracked_independently(self):
        # A healthy second monitor interleaved with the stalled one
        # must neither mask the stall nor produce its own finding.
        series = self.stalled_series()
        series += [(55.0 + 60.0 * i, "rpmon-b", i, 5) for i in range(13)]
        ctx = make_ctx(stores={WORKFLOW: wf_store(series)})
        findings = self.detector.detect(ctx, DEFAULT_THRESHOLDS)
        assert [f.where for f in findings] == ["rpmon"]


class TestBatteryPlumbing:
    def test_detect_all_sorts_most_severe_first(self):
        ctx = make_ctx(
            stores={
                HARDWARE: hw_store(
                    [(i * 30.0, "cn0002", 0.95) for i in range(11)]
                )
            },
            server_stats={
                "hardware": {
                    "ranks": 1,
                    "calls": 10,
                    "errors": 0,
                    "mean_queue_seconds": 8.0,
                    "busy_seconds": 1.0,
                }
            },
        )
        findings = detect_all(ctx)
        assert [f.kind for f in findings] == [
            "rpc_queueing",
            "cpu_oversubscription",
        ]
        assert findings[0].severity > findings[1].severity

    def test_observe_all_covers_every_metric(self):
        observed = observe_all(make_ctx())
        assert set(observed) == {
            "cpu_sustained_seconds",
            "rpc_mean_queue_seconds",
            "imbalance_ratio",
            "stall_seconds",
        }
        assert all(v == 0.0 for v in observed.values())

    def test_thresholds_round_trip_and_validation(self):
        data = DEFAULT_THRESHOLDS.to_dict()
        assert Thresholds.from_dict(data) == DEFAULT_THRESHOLDS
        with pytest.raises(ValueError, match="unknown threshold"):
            Thresholds.from_dict({**data, "bogus_knob": 1.0})
        bumped = DEFAULT_THRESHOLDS.with_updates(stall_seconds=999.0)
        assert bumped.stall_seconds == 999.0
        assert DEFAULT_THRESHOLDS.stall_seconds != 999.0

    def test_finding_to_dict_and_render(self):
        finding = Finding(
            kind="rpc_queueing",
            detector="rpc-queueing",
            where="soma.workflow",
            start=0.0,
            end=100.0,
            severity=2.0,
            evidence={"calls": 5},
            threshold={"rpc_mean_queue_seconds": 0.05},
            action="add ranks",
        )
        payload = finding.to_dict()
        assert payload["kind"] == "rpc_queueing"
        assert payload["evidence"] == {"calls": 5}
        text = render_findings([finding])
        assert "soma.workflow" in text and "add ranks" in text
        assert "no findings" in render_findings([])


class TestScenarioBattery:
    """The acceptance battery: detectors vs each scenario's truth."""

    def test_registry_covers_every_kind(self):
        planted = set().union(*(s.expect for s in SCENARIOS.values()))
        assert planted == set(KINDS)
        assert len(planted) >= 4

    @pytest.mark.parametrize("seed", (3, 17))
    @pytest.mark.parametrize("name", CLEAN_SCENARIOS)
    def test_clean_scenarios_produce_zero_findings(self, name, seed):
        ctx = DetectionContext.from_result(run_scenario(name, seed=seed))
        assert detect_all(ctx) == []

    @pytest.mark.parametrize(
        "name", [n for n, s in SCENARIOS.items() if s.expect]
    )
    def test_fault_scenarios_fire_exactly_their_kind(self, name):
        scenario = SCENARIOS[name]
        ctx = DetectionContext.from_result(run_scenario(name, seed=42))
        findings = detect_all(ctx)
        assert {f.kind for f in findings} == set(scenario.expect)
        assert all(f.severity >= 1.0 for f in findings)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("no-such-scenario")
