"""Critical-path decomposition of pipelines and tasks."""

import pytest

from repro.analysis import breakdown_task, pipeline_critical_path
from repro.entk import AppManager, Pipeline, Stage
from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)


@pytest.fixture(scope="module")
def executed_pipeline():
    session = Session(cluster_spec=summit_like(3), seed=6)
    client = Client(session)
    env = session.env
    pipeline = Pipeline(
        stages=[
            Stage(
                name="wide",
                tasks=[
                    TaskDescription(
                        name=f"w{i}", model=FixedDurationModel(10.0 + i)
                    )
                    for i in range(3)
                ],
            ),
            Stage(
                name="narrow",
                tasks=[TaskDescription(name="n", model=FixedDurationModel(5.0))],
            ),
        ]
    )

    def main(env):
        yield from client.submit_pilot(PilotDescription(nodes=2))
        manager = AppManager(client)
        yield from manager.run([pipeline])

    env.run(env.process(main(env)))
    client.close()
    return pipeline


def test_breakdown_accounts_for_whole_lifetime(executed_pipeline):
    task = executed_pipeline.stages[0].tasks[0]
    breakdown = breakdown_task(task)
    wall = task.finished_at - task.submitted_at
    assert breakdown.total == pytest.approx(wall, rel=1e-6)
    assert breakdown.execution_seconds == pytest.approx(10.0, rel=0.05)
    assert 0.0 <= breakdown.overhead_fraction < 1.0


def test_critical_path_picks_slowest_task(executed_pipeline):
    path = pipeline_critical_path(executed_pipeline)
    assert [s.name for s in path.stages] == ["wide", "narrow"]
    # The slowest of the wide stage (12s task, name w2) is critical.
    assert path.stages[0].critical_task.endswith(
        executed_pipeline.stages[0].tasks[2].uid
    )


def test_path_sums_bounded_by_makespan(executed_pipeline):
    path = pipeline_critical_path(executed_pipeline)
    total = path.execution_seconds + path.queue_seconds + path.overhead_seconds
    # The per-stage critical chain can't exceed the makespan by much
    # (client-side feeding overlaps the previous stage slightly).
    assert total <= path.makespan * 1.1
    assert path.execution_seconds == pytest.approx(12.0 + 5.0, rel=0.1)
    summary = path.summary()
    assert set(summary) == {"makespan", "execution", "queue", "overhead"}


def test_unfinished_pipeline_rejected():
    with pytest.raises(ValueError):
        pipeline_critical_path(Pipeline())
