"""Tests for the monitoring-overhead accounting behind Fig 11."""

from __future__ import annotations

import math

import pytest

from repro.analysis.overhead import (
    OverheadResult,
    compare_runtimes,
    makespan_overhead,
)


def test_compare_runtimes_percentages():
    baseline = [100.0, 100.0, 100.0]
    results = compare_runtimes(
        baseline,
        {"exclusive": [104.0, 104.0], "shared": [95.0, 95.0]},
    )
    by_config = {r.config: r for r in results}
    assert set(by_config) == {"exclusive", "shared"}

    exclusive = by_config["exclusive"]
    assert exclusive.baseline_mean == pytest.approx(100.0)
    assert exclusive.config_mean == pytest.approx(104.0)
    assert exclusive.overhead_percent == pytest.approx(4.0)
    assert not exclusive.is_speedup

    shared = by_config["shared"]
    assert shared.overhead_percent == pytest.approx(-5.0)
    assert shared.is_speedup


def test_compare_runtimes_preserves_input_order():
    results = compare_runtimes(
        [1.0], {"c": [1.0], "a": [1.0], "b": [1.0]}
    )
    assert [r.config for r in results] == ["c", "a", "b"]


def test_compare_runtimes_zero_baseline_is_nan_not_crash():
    (result,) = compare_runtimes([0.0, 0.0], {"m": [3.0]})
    assert math.isnan(result.overhead_percent)
    # NaN overhead is neither a speedup nor a slowdown.
    assert not result.is_speedup


def test_compare_runtimes_empty_sample_is_nan():
    (result,) = compare_runtimes([10.0], {"m": []})
    assert math.isnan(result.config_mean)
    assert math.isnan(result.overhead_percent)


def test_makespan_overhead():
    assert makespan_overhead(200.0, 210.0) == pytest.approx(5.0)
    assert makespan_overhead(200.0, 190.0) == pytest.approx(-5.0)
    assert math.isnan(makespan_overhead(0.0, 10.0))


def test_overhead_result_is_frozen():
    result = OverheadResult("c", 1.0, 2.0, 100.0, 0.0, 0.0)
    with pytest.raises(AttributeError):
        result.config = "other"
