"""Tests for the plain-text table/figure renderers."""

from __future__ import annotations

import math

from repro.analysis.report import (
    fmt,
    fmt_percent,
    render_boxes,
    render_manifest,
    render_series,
    render_table,
    sparkline,
)


def test_fmt_handles_nan_and_specs():
    assert fmt(1.2345) == "1.23"
    assert fmt(1.2345, ".1f") == "1.2"
    assert fmt(math.nan) == "n/a"
    assert fmt(math.nan, na="-") == "-"
    assert fmt_percent(4.0) == "+4.00%"
    assert fmt_percent(-5.5) == "-5.50%"
    assert fmt_percent(math.nan) == "n/a"


def test_render_table_alignment_and_title():
    text = render_table(
        ["name", "n"], [["a", 1], ["long-name", 22]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    # All rows pad to equal width.
    assert len({len(line) for line in lines[1:]}) == 1
    assert "long-name | 22" in lines[-1]
    assert set(lines[2]) <= {"-", "+"}


def test_sparkline_shapes():
    assert sparkline([]) == ""
    flat = sparkline([2.0, 2.0, 2.0])
    assert len(flat) == 3 and len(set(flat)) == 1
    ramp = sparkline([0.0, 0.5, 1.0])
    assert len(ramp) == 3
    assert ramp[0] < ramp[1] < ramp[2]
    # Explicit bounds clamp out-of-range values instead of raising.
    assert len(sparkline([5.0, -5.0], lo=0.0, hi=1.0)) == 2


def test_render_series():
    assert render_series("s", [], []) == "s: (empty)"
    text = render_series("s", [0.0, 10.0], [1.0, 3.0], unit="s")
    assert text.startswith("s: ")
    assert "[1.00..3.00]s" in text
    assert "x=[0..10]" in text


def test_render_boxes_includes_stats_and_nan():
    text = render_boxes({"g": [1.0, 2.0, 3.0], "empty": []}, title="B")
    lines = text.splitlines()
    assert lines[0] == "B"
    g_row = next(line for line in lines if line.startswith("g "))
    assert "2.0" in g_row  # median
    empty_row = next(line for line in lines if line.startswith("empty"))
    assert "n/a" in empty_row


def _manifest():
    return {
        "jobs": 2,
        "code_version": "c0ffee" * 8,
        "cells": [
            {
                "key": "cell-a",
                "family": "openfoam",
                "seed": 3,
                "source": "computed",
                "wall_seconds": 1.25,
                "result_digest": "abc123def4567890",
            },
            {
                "key": "cell-b",
                "family": "ddmd",
                "seed": 5,
                "source": "journal",
                "wall_seconds": 0.5,
                "result_digest": "feed" * 8,
            },
        ],
        "failed": [{"key": "cell-c", "digest": "d", "error": "boom"}],
        "pending": ["cell-d"],
        "counts": {
            "total": 4,
            "computed": 1,
            "cache_hits": 0,
            "journal_replays": 1,
            "failed": 1,
            "pending": 1,
        },
        "matrix_digest": "m" * 64,
        "wall_clock_seconds": 2.0,
        "serial_seconds_estimate": 4.0,
        "speedup_vs_serial": 2.0,
    }


def test_render_manifest_merges_all_cell_states():
    text = render_manifest(_manifest())
    assert "cell-a" in text and "computed" in text
    assert "cell-b" in text and "journal" in text
    assert "cell-c" in text and "FAILED" in text
    assert "cell-d" in text and "pending" in text
    # Digests are truncated for the table.
    assert "abc123def456" in text
    assert "abc123def4567890" not in text
    assert "completed 1 computed + 0 cache hits + 1 journal replays" in text
    assert "(1 failed, 1 pending)" in text
    assert "speedup 2.00x" in text
    assert "matrix digest " + "m" * 64 in text
