"""Statistics, report rendering, overhead accounting."""

import math

import pytest

from repro.analysis import (
    Summary,
    compare_runtimes,
    fmt,
    fmt_percent,
    group_by,
    makespan_overhead,
    percent_change,
    render_boxes,
    render_series,
    render_table,
    sparkline,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_empty_has_no_order_statistics(self):
        # Regression: an all-zero Summary was indistinguishable from a
        # genuine all-zero sample; the empty sample's statistics are NaN.
        s = summarize([])
        assert s.count == 0
        for value in (s.mean, s.std, s.minimum, s.p25, s.median, s.p75,
                      s.maximum):
            assert math.isnan(value)

    def test_empty_differs_from_all_zero_sample(self):
        zeros = summarize([0.0, 0.0])
        empty = summarize([])
        assert zeros.mean == 0.0
        assert not math.isnan(zeros.median)
        assert math.isnan(empty.median)

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=1.50" in text

    def test_str_of_empty_is_na(self):
        text = str(summarize([]))
        assert "n=0" in text
        assert "n/a" in text
        assert "nan" not in text


class TestHelpers:
    def test_group_by(self):
        groups = group_by([("a", 1), ("b", 2), ("a", 3)])
        assert groups == {"a": [1, 3], "b": [2]}

    def test_percent_change(self):
        assert percent_change(100.0, 110.0) == pytest.approx(10.0)
        assert percent_change(100.0, 90.0) == pytest.approx(-10.0)

    def test_percent_change_zero_baseline_is_nan(self):
        # Regression: used to return 0.0, silently reporting zero
        # overhead whenever the baseline was zero.
        assert math.isnan(percent_change(0.0, 50.0))
        assert math.isnan(percent_change(0.0, 0.0))

    def test_makespan_overhead(self):
        assert makespan_overhead(100.0, 104.6) == pytest.approx(4.6)

    def test_fmt_renders_nan_as_na(self):
        assert fmt(math.nan) == "n/a"
        assert fmt(3.14159, ".2f") == "3.14"
        assert fmt_percent(math.nan) == "n/a"
        assert fmt_percent(4.6) == "+4.60%"


class TestCompareRuntimes:
    def test_overheads_and_speedups(self):
        baseline = [100.0, 100.0]
        results = compare_runtimes(
            baseline,
            {"slow": [105.0, 105.0], "fast": [95.0, 95.0]},
        )
        by_name = {r.config: r for r in results}
        assert by_name["slow"].overhead_percent == pytest.approx(5.0)
        assert not by_name["slow"].is_speedup
        assert by_name["fast"].overhead_percent == pytest.approx(-5.0)
        assert by_name["fast"].is_speedup


class TestRendering:
    def test_render_table_aligned(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_sparkline_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] <= line[-1]

    def test_sparkline_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_render_series(self):
        text = render_series("runtime", [0, 1, 2], [10.0, 20.0, 15.0], "s")
        assert "runtime" in text
        assert "10.00" in text and "20.00" in text

    def test_render_series_empty(self):
        assert "(empty)" in render_series("x", [], [])

    def test_render_boxes(self):
        text = render_boxes({"cfg": [1.0, 2.0, 3.0]}, title="Fig")
        assert "cfg" in text
        assert "median" in text

    def test_render_boxes_empty_group_shows_na(self):
        text = render_boxes({"empty": []})
        assert "n/a" in text
        assert "nan" not in text
