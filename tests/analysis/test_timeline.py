"""Fig 8 timeline reconstruction."""

import pytest

from repro.analysis import (
    BOOTSTRAP,
    RUNNING,
    SCHEDULING,
    build_timeline,
)
from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)


@pytest.fixture(scope="module")
def run():
    session = Session(cluster_spec=summit_like(3), seed=4)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=2, agent_nodes=1)
        )
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"t{i}", model=FixedDurationModel(20.0), ranks=30
                )
                for i in range(4)
            ]
        )
        yield from client.wait_tasks(tasks)
        return pilot, tasks

    pilot, tasks = env.run(env.process(main(env)))
    client.close()
    timeline = build_timeline(session, client.task_manager.tasks)
    return session, pilot, tasks, timeline


def test_all_three_kinds_present(run):
    _, _, _, timeline = run
    assert timeline.kinds() == {BOOTSTRAP, SCHEDULING, RUNNING}


def test_bootstrap_band_covers_all_cores(run):
    session, pilot, _, timeline = run
    boot = [iv for iv in timeline.intervals if iv.kind == BOOTSTRAP]
    nodes = {iv.node for iv in boot}
    assert nodes == {n.name for n in session.cluster.nodes}
    cores = {iv.core for iv in boot if iv.node == pilot.agent_node.name}
    assert len(cores) == 42


def test_running_core_seconds_match_workload(run):
    _, _, tasks, timeline = run
    # 4 tasks x 30 cores x ~20s each = ~2400 core-seconds running.
    running = timeline.busy_core_seconds(RUNNING)
    assert running == pytest.approx(4 * 30 * 20.0, rel=0.2)


def test_scheduling_precedes_running_per_core(run):
    _, _, _, timeline = run
    per_task = {}
    for iv in timeline.intervals:
        if iv.task:
            per_task.setdefault((iv.task, iv.node, iv.core), {})[
                iv.kind
            ] = iv
    for key, kinds in per_task.items():
        if SCHEDULING in kinds and RUNNING in kinds:
            assert kinds[SCHEDULING].stop <= kinds[RUNNING].start + 1e-9


def test_utilization_bounded(run):
    session, _, _, timeline = run
    util = timeline.utilization(
        total_cores=session.cluster.total_cores,
        since=0.0,
        until=timeline.t_end,
    )
    assert 0.0 < util <= 1.0


def test_for_node_filter(run):
    session, pilot, _, timeline = run
    node = pilot.compute_nodes[0].name
    for iv in timeline.for_node(node):
        assert iv.node == node
