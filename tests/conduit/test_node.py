"""Conduit Node: paths, leaves, merge, diff, serialization, size."""

import pytest

from repro.conduit import Node, PathError


class TestPathAccess:
    def test_set_get_scalar(self):
        n = Node()
        n["a/b/c"] = 42
        assert n["a/b/c"] == 42

    def test_intermediate_nodes_materialized(self):
        n = Node()
        n["x/y/z"] = 1.5
        assert "x" in n
        assert "x/y" in n
        assert n["x"].is_object

    def test_missing_path_raises(self):
        n = Node()
        with pytest.raises(PathError):
            n["nope"]

    def test_get_with_default(self):
        n = Node()
        assert n.get("missing", "fallback") == "fallback"
        n["a"] = 1
        assert n.get("a") == 1

    def test_empty_path_rejected(self):
        n = Node()
        with pytest.raises(PathError):
            n[""] = 1

    def test_slashes_normalized(self):
        n = Node()
        n["a//b/"] = 1
        assert n["a/b"] == 1

    def test_descend_through_leaf_rejected(self):
        n = Node()
        n["a"] = 1
        with pytest.raises(PathError):
            n["a/b"] = 2

    def test_assign_value_to_object_rejected(self):
        n = Node()
        n["a/b"] = 1
        with pytest.raises(PathError):
            n["a"] = 2

    def test_delete(self):
        n = Node()
        n["a/b"] = 1
        del n["a/b"]
        assert "a/b" not in n
        assert "a" in n

    def test_delete_missing_raises(self):
        n = Node()
        with pytest.raises(PathError):
            del n["ghost"]


class TestLeafTypes:
    def test_supported_scalars(self):
        n = Node()
        for i, value in enumerate([1, 2.5, "s", True, b"raw", None]):
            n[f"k{i}"] = value
            assert n[f"k{i}"] == value

    def test_scalar_list(self):
        n = Node()
        n["arr"] = [1, 2, 3]
        assert n["arr"] == [1, 2, 3]

    def test_nested_list_rejected(self):
        n = Node()
        with pytest.raises(TypeError):
            n["bad"] = [[1], [2]]

    def test_arbitrary_object_rejected(self):
        n = Node()
        with pytest.raises(TypeError):
            n["bad"] = object()

    def test_dict_assignment_builds_subtree(self):
        n = Node()
        n.fetch("root").set({"a": 1, "b": {"c": 2}})
        assert n["root/a"] == 1
        assert n["root/b/c"] == 2


class TestIteration:
    def test_child_names_ordered(self):
        n = Node()
        n["b"] = 1
        n["a"] = 2
        assert n.child_names() == ["b", "a"]

    def test_leaves(self):
        n = Node()
        n["x/y"] = 1
        n["x/z"] = 2
        n["w"] = 3
        assert dict(n.leaves()) == {"x/y": 1, "x/z": 2, "w": 3}

    def test_paths(self):
        n = Node()
        n["a/b"] = 1
        assert n.paths() == ["a/b"]

    def test_num_leaves(self):
        n = Node()
        n["a"] = 1
        n["b/c"] = 2
        assert n.num_leaves() == 2

    def test_len_counts_children(self):
        n = Node()
        n["a"] = 1
        n["b"] = 2
        assert len(n) == 2


class TestMerge:
    def test_update_disjoint(self):
        a, b = Node(), Node()
        a["x"] = 1
        b["y"] = 2
        a.update(b)
        assert a["x"] == 1 and a["y"] == 2

    def test_update_overwrites_leaves(self):
        a, b = Node(), Node()
        a["k"] = "old"
        b["k"] = "new"
        a.update(b)
        assert a["k"] == "new"

    def test_update_deep(self):
        a, b = Node(), Node()
        a["r/one"] = 1
        b["r/two"] = 2
        a.update(b)
        assert a["r/one"] == 1 and a["r/two"] == 2

    def test_update_leaf_onto_object_rejected(self):
        a, b = Node(), Node()
        a["r/x"] = 1
        b["r"] = 5
        with pytest.raises(PathError):
            a.update(b)

    def test_update_does_not_alias(self):
        a, b = Node(), Node()
        b["k/v"] = 1
        a.update(b)
        b["k/v2"] = 2
        assert "k/v2" not in a


class TestDiffEquality:
    def test_equal_trees(self):
        a, b = Node(), Node()
        for n in (a, b):
            n["p/q"] = 1
        assert a == b
        assert a.diff(b) == []

    def test_diff_reports_paths(self):
        a, b = Node(), Node()
        a["x"] = 1
        a["same"] = 0
        b["y"] = 2
        b["same"] = 0
        assert sorted(a.diff(b)) == ["x", "y"]

    def test_diff_value_change(self):
        a, b = Node(), Node()
        a["k"] = 1
        b["k"] = 2
        assert a.diff(b) == ["k"]


class TestSerialization:
    def test_json_round_trip(self):
        n = Node()
        n["a/b"] = 1
        n["a/c"] = "text"
        n["a/d"] = [1.5, 2.5]
        n["raw"] = b"\x00\x01"
        restored = Node.from_json(n.to_json())
        assert restored == n

    def test_to_dict(self):
        n = Node()
        n["a/b"] = 1
        assert n.to_dict() == {"a": {"b": 1}}

    def test_from_dict(self):
        n = Node.from_dict({"a": {"b": 2}, "c": 3})
        assert n["a/b"] == 2 and n["c"] == 3

    def test_copy_is_deep(self):
        n = Node()
        n["a/b"] = [1, 2]
        c = n.copy()
        c["a/b"].append(3)
        assert n["a/b"] == [1, 2]


class TestSize:
    def test_nbytes_grows_with_content(self):
        small, big = Node(), Node()
        small["k"] = 1
        for i in range(100):
            big[f"path/to/leaf{i}"] = float(i)
        assert big.nbytes() > small.nbytes() > 0

    def test_nbytes_string_length(self):
        a, b = Node(), Node()
        a["k"] = "x"
        b["k"] = "x" * 1000
        assert b.nbytes() - a.nbytes() == 999

    def test_render_contains_values(self):
        n = Node()
        n["task/event"] = "launch_start"
        assert "launch_start" in n.render()
