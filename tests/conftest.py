"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


def run(env: Environment, generator, until=None):
    """Run a generator as a process and return its value."""
    proc = env.process(generator)
    return env.run(proc if until is None else until)
