"""Shared fixtures and helpers for the test suite.

The whole suite runs with the kernel sanitizers armed
(``Environment(sanitize=True)`` for every environment any test builds),
so each existing integration/chaos test doubles as a sanitizer test.
Spontaneous findings — resource leaks and shared-dict races, which are
recorded the instant they happen — fail the test that produced them
unless it opts in with ``@pytest.mark.allow_sanitizer_findings`` (the
fixtures that deliberately trigger sanitizers use that marker).
"""

from __future__ import annotations

import pytest

from repro.sim import Environment, set_default_sanitize
from repro.sim.sanitizer import drain_spontaneous_findings


def pytest_configure(config) -> None:
    set_default_sanitize(True)


@pytest.fixture(autouse=True)
def _telemetry_guard():
    """Isolate the process-wide telemetry default and hub registry.

    A test that flips ``set_default_telemetry`` or leaves enabled hubs
    in the ``_ACTIVE`` registry must not leak that state into its
    neighbours.
    """
    from repro.telemetry import drain_telemetries, set_default_telemetry

    previous = set_default_telemetry(None)
    drain_telemetries()
    yield
    set_default_telemetry(previous)
    drain_telemetries()


@pytest.fixture(autouse=True)
def _sanitizer_guard(request):
    """Fail any test whose simulated runs leak resources or race."""
    drain_spontaneous_findings()
    yield
    findings = drain_spontaneous_findings()
    if request.node.get_closest_marker("allow_sanitizer_findings"):
        return
    if findings:
        report = "\n".join(f"  - {f.format()}" for f in findings)
        pytest.fail(
            f"kernel sanitizer recorded {len(findings)} finding(s) during "
            f"this test:\n{report}",
            pytrace=False,
        )


@pytest.fixture
def env() -> Environment:
    return Environment()


def run(env: Environment, generator, until=None):
    """Run a generator as a process and return its value."""
    proc = env.process(generator)
    return env.run(proc if until is None else until)
