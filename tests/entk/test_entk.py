"""EnTK layer: pipelines, stages, barriers, callbacks."""


from repro.entk import AppManager, Pipeline, Stage
from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)


def make_stack(nodes=2, seed=1):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env

    def boot(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )

    env.run(env.process(boot(env)))
    return session, client


def td(name, duration=2.0, **kwargs):
    return TaskDescription(
        name=name, model=FixedDurationModel(duration), **kwargs
    )


class TestStructure:
    def test_stage_collects_descriptions(self):
        stage = Stage(name="s1", tasks=[td("a")])
        stage.add_task(td("b"))
        assert len(stage.task_descriptions) == 2

    def test_pipeline_counts_tasks(self):
        pipeline = Pipeline(
            stages=[Stage(tasks=[td("a"), td("b")]), Stage(tasks=[td("c")])]
        )
        assert pipeline.num_tasks == 3

    def test_uids_unique(self):
        assert Pipeline().uid != Pipeline().uid
        assert Stage().uid != Stage().uid


class TestExecution:
    def test_stages_run_in_order(self):
        session, client = make_stack()
        env = session.env
        pipeline = Pipeline(
            stages=[
                Stage(name="first", tasks=[td("a", 3.0)]),
                Stage(name="second", tasks=[td("b", 3.0)]),
            ]
        )
        manager = AppManager(client)

        def main(env):
            yield from manager.run([pipeline])

        env.run(env.process(main(env)))
        first, second = pipeline.stages
        assert first.finished_at <= second.started_at
        assert pipeline.succeeded
        assert pipeline.duration > 6.0
        client.close()

    def test_pipelines_run_concurrently(self):
        session, client = make_stack(nodes=2)
        env = session.env
        pipelines = [
            Pipeline(stages=[Stage(tasks=[td(f"p{i}", 10.0)])])
            for i in range(2)
        ]
        manager = AppManager(client)

        def main(env):
            yield from manager.run(pipelines)

        env.run(env.process(main(env)))
        starts = [p.started_at for p in pipelines]
        assert max(starts) - min(starts) < 1.0
        # Concurrent: total wall << serial sum.
        durations = manager.pipeline_durations()
        assert len(durations) == 2
        overlap = max(p.finished_at for p in pipelines) - min(starts)
        assert overlap < sum(durations)
        client.close()

    def test_stage_post_exec_callback(self):
        session, client = make_stack()
        env = session.env
        called = []
        stage = Stage(
            name="cb",
            tasks=[td("x", 1.0)],
            post_exec=lambda s: called.append(s.name),
        )
        manager = AppManager(client)

        def main(env):
            yield from manager.run([Pipeline(stages=[stage])])

        env.run(env.process(main(env)))
        assert called == ["cb"]
        client.close()

    def test_between_phases_callback(self):
        session, client = make_stack()
        env = session.env
        phases_seen = []

        def between(pipeline, phase):
            phases_seen.append(phase)

        stages = [Stage(tasks=[td(f"s{i}", 1.0)]) for i in range(4)]
        manager = AppManager(
            client, stages_per_phase=2, between_phases=between
        )

        def main(env):
            yield from manager.run([Pipeline(stages=stages)])

        env.run(env.process(main(env)))
        assert phases_seen == [0, 1]
        client.close()

    def test_failed_task_recorded(self):
        from repro.rp import FailingModel

        session, client = make_stack()
        env = session.env
        stage = Stage(
            tasks=[
                TaskDescription(name="bad", model=FailingModel(1.0)),
                td("good", 1.0),
            ]
        )
        manager = AppManager(client)

        def main(env):
            yield from manager.run([Pipeline(stages=[stage])])

        env.run(env.process(main(env)))
        assert len(manager.failed_tasks) == 1
        assert not stage.succeeded
        client.close()

    def test_stage_durations_query(self):
        session, client = make_stack()
        env = session.env
        pipeline = Pipeline(
            stages=[
                Stage(name="sim", tasks=[td("a", 2.0)]),
                Stage(name="train", tasks=[td("b", 2.0)]),
            ]
        )
        manager = AppManager(client)

        def main(env):
            yield from manager.run([pipeline])

        env.run(env.process(main(env)))
        assert len(manager.stage_durations("sim")) == 1
        assert len(manager.stage_durations()) == 2
        client.close()
