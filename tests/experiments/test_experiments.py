"""Experiment harness configuration and small-scale behaviour."""


from repro.experiments import (
    DDMD_ADAPTIVE_TRAIN_COUNTS,
    DDMD_TUNING_PHASES,
    OVERLOAD,
    SCALING_A,
    SCALING_B,
    TUNING,
    adaptive_experiment,
    build_pipelines,
    run_ddmd_experiment,
    run_workflow,
    tuning_experiment,
)
from repro.rp import FixedDurationModel, TaskDescription


class TestTable1Configs:
    def test_tuning_row(self):
        assert TUNING.num_tasks == 4
        assert TUNING.compute_nodes == 4
        assert TUNING.rank_configs == (20, 41, 82, 164)
        assert TUNING.soma_ranks_per_namespace == 1
        assert set(TUNING.monitors) == {"proc", "rp"}
        assert TUNING.use_tau

    def test_overload_row(self):
        assert OVERLOAD.num_tasks == 80
        assert OVERLOAD.compute_nodes == 10
        assert OVERLOAD.agent_nodes == 1


class TestTable2Configs:
    def test_tuning_phases(self):
        exp = tuning_experiment()
        assert exp.phases == 6
        assert exp.pipelines == 1
        assert exp.app_nodes == 2
        assert exp.soma_nodes == 1
        assert len(DDMD_TUNING_PHASES) == 6
        sim_cores = [p["cores_per_sim_task"] for p in DDMD_TUNING_PHASES]
        assert sim_cores == [1, 3, 7, 1, 3, 7]

    def test_adaptive_train_counts(self):
        exp = adaptive_experiment()
        assert exp.phases == 4
        counts = [
            exp.params_for_phase(i).num_train_tasks for i in range(4)
        ]
        assert counts == list(DDMD_ADAPTIVE_TRAIN_COUNTS) == [1, 2, 4, 6]

    def test_scaling_a_ranks(self):
        for soma_nodes, total_ranks in ((1, 16), (2, 32), (4, 64)):
            exp = SCALING_A(soma_nodes, "shared")
            assert exp.soma_config().total_ranks == total_ranks
            assert exp.pipelines == 64

    def test_scaling_b_geometry(self):
        for pipes, soma_nodes in ((64, 4), (128, 7), (256, 13), (512, 25)):
            exp = SCALING_B(pipes, "exclusive")
            assert exp.app_nodes == pipes
            assert exp.soma_nodes == soma_nodes
            assert exp.soma_config().total_ranks == pipes // 2 * 2

    def test_scaling_b_none_has_no_soma(self):
        exp = SCALING_B(64, "none")
        assert exp.soma_nodes == 0
        assert exp.soma_config() is None

    def test_scaling_b_frequent_frequency(self):
        assert SCALING_B(64, "exclusive", frequent=True).monitoring_frequency == 10.0
        assert SCALING_B(64, "exclusive").monitoring_frequency == 60.0

    def test_build_pipelines_shape(self):
        exp = SCALING_B(4, "none")
        pipelines = build_pipelines(exp)
        assert len(pipelines) == 4
        assert all(len(p.stages) == 4 for p in pipelines)
        exp6 = tuning_experiment()
        assert len(build_pipelines(exp6)[0].stages) == 24


class TestHarness:
    def test_run_workflow_baseline(self):
        def workload(client, deployment):
            tasks = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(3.0))]
            )
            yield from client.wait_tasks(tasks)
            return "payload-value"

        result = run_workflow(workload, nodes=1, soma_config=None, seed=1)
        assert result.payload == "payload-value"
        assert result.makespan > 3.0
        assert not result.deployment.enabled
        assert len(result.application_tasks) == 1

    def test_adaptive_analysis_between_phases(self):
        exp = adaptive_experiment().with_updates(
            phases=2,
            monitoring_frequency=15.0,
            phase_overrides=({"num_train_tasks": 1}, {"num_train_tasks": 2}),
        )
        res = run_ddmd_experiment(exp, seed=3, adaptive_analysis=True)
        analyses = res.payload["analyses"]
        assert len(analyses) == 2
        assert analyses[0]["phase"] == 0
        # Per-resource headroom per node, each component within [0, 1].
        assert analyses[-1]["headroom"]
        for value in analyses[-1]["headroom"].values():
            assert set(value) == {"cpu", "gpu"}
            assert 0.0 <= value["cpu"] <= 1.0
            assert 0.0 <= value["gpu"] <= 1.0
