"""Harness behaviours: drain, baseline, node accounting, payloads."""

import pytest

from repro.experiments import run_workflow
from repro.rp import FixedDurationModel, TaskDescription
from repro.soma import HARDWARE, SomaConfig, WORKFLOW


def simple_workload(n=2, duration=5.0):
    def workload(client, deployment):
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"t{i}", model=FixedDurationModel(duration)
                )
                for i in range(n)
            ]
        )
        yield from client.wait_tasks(tasks)
        return {"tasks": tasks}

    return workload


def test_baseline_has_no_monitors():
    result = run_workflow(simple_workload(), nodes=1, soma_config=None)
    assert not result.deployment.enabled
    assert result.deployment.hw_monitor_tasks == []
    # Only the application tasks exist.
    assert len(result.tasks) == 2


def test_drain_extends_finish_but_not_makespan():
    config = SomaConfig(
        namespaces=(WORKFLOW, HARDWARE),
        monitors=("proc",),
        monitoring_frequency=10.0,
    )
    no_drain = run_workflow(
        simple_workload(), nodes=1, soma_config=config, drain_seconds=0.0
    )
    drained = run_workflow(
        simple_workload(), nodes=1, soma_config=config, drain_seconds=30.0
    )
    assert drained.finished_at > no_drain.finished_at
    assert drained.makespan == pytest.approx(no_drain.makespan, rel=0.05)


def test_node_roles_accounted():
    config = SomaConfig(
        namespaces=(WORKFLOW, HARDWARE), monitors=("proc",)
    )
    result = run_workflow(
        simple_workload(),
        nodes=2,
        agent_nodes=1,
        service_nodes=1,
        soma_config=config,
    )
    pilot = result.client.pilot
    assert len(pilot.agent_nodes) == 1
    assert len(pilot.service_nodes) == 1
    assert len(pilot.compute_nodes) == 2
    # The cluster was sized to fit the whole pilot.
    assert len(result.session.cluster.nodes) == 4


def test_payload_passthrough():
    result = run_workflow(simple_workload(n=3), nodes=1, soma_config=None)
    assert len(result.payload["tasks"]) == 3
    assert len(result.application_tasks) == 3
    assert result.tasks_by_name_prefix("t1")


def test_makespan_measured_from_pilot_active():
    result = run_workflow(
        simple_workload(n=1, duration=7.0), nodes=1, soma_config=None
    )
    # Makespan excludes queue+bootstrap, includes task round trip.
    assert 7.0 < result.makespan < 20.0
    assert result.finished_at > result.makespan
