"""Shared helpers for the chaos test battery.

Every scenario boots a small pilot, arms a :class:`FaultInjector`, runs
a workload through the fault window, and asserts two things: the
workflow degraded the way the fault model promises, and the whole run
is deterministic — the same (seed, plan) pair yields byte-identical
trace and SOMA metric streams.
"""

from __future__ import annotations

from repro.faults import FaultInjector, FaultPlan
from repro.platform import summit_like
from repro.rp import Client, PilotDescription, Session
from repro.soma import deploy_soma


def boot(nodes=2, seed=1, soma=None, rack_size=None):
    """Boot a session + pilot (+ SOMA stack), one spare node for spill."""
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    if rack_size is not None:
        session.cluster.network.rack_size = rack_size
    client = Client(session)
    env = session.env
    box = {}

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        box["pilot"] = pilot
        if soma is not None:
            box["deployment"] = yield from deploy_soma(client, pilot, soma)

    env.run(env.process(main(env)))
    return session, client, box


def arm(session, plan: FaultPlan, name: str = "chaos") -> FaultInjector:
    """Attach and start a fault injector on a booted session."""
    injector = FaultInjector(session, plan, name=name)
    injector.start()
    return injector


def trace_signature(session) -> str:
    """Canonical byte string of the full trace stream."""
    return "\n".join(
        f"{rec.time!r}|{rec.category}|{rec.name}|{sorted(rec.data.items())!r}"
        for rec in session.tracer.records
    )


def metric_signature(deployment) -> str:
    """Canonical byte string of every SOMA namespace's record stream."""
    lines = []
    for namespace in deployment.config.namespaces:
        store = deployment.store(namespace)
        for rec in store.records():
            lines.append(f"{namespace}|{rec.time!r}|{rec.source}|{rec.nbytes!r}")
    return "\n".join(lines)


def client_by_name(deployment, name: str):
    """The SOMA client of the monitor model called ``name``."""
    models = list(deployment.hw_monitor_models())
    if deployment.rp_monitor_model is not None:
        models.append(deployment.rp_monitor_model)
    for model in models:
        if model.client is not None and model.client.name == name:
            return model.client
    raise LookupError(name)
