"""Chaos scenario: the SOMA collector goes down, then restarts.

During the outage clients retry with backoff, then degrade: samples are
dropped (never blocking the host), an observability gap opens, and no
records land in any namespace store.  After the restart publishing
resumes, the gap is recorded, and the clients' health counters surface
in the published trees.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.rp import FixedDurationModel, TaskDescription, TaskState
from repro.soma import HARDWARE, SomaConfig, WORKFLOW

from tests.faults.harness import (
    arm,
    boot,
    metric_signature,
    trace_signature,
)

pytestmark = pytest.mark.slow

RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.25,
    multiplier=2.0,
    max_delay=2.0,
    jitter=0.1,
    deadline=5.0,
    timeout=2.0,
)

SOMA = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc", "rp"),
    monitoring_frequency=5.0,
    retry=RETRY,
)

OUTAGE_DELAY = 8.0
OUTAGE_LENGTH = 15.0


def _run(seed):
    session, client, box = boot(nodes=2, seed=seed, soma=SOMA)
    env = session.env
    t0 = env.now
    injector = arm(
        session,
        FaultPlan().service_outage(
            at=t0 + OUTAGE_DELAY, duration=OUTAGE_LENGTH
        ),
    )

    def main(env):
        tasks = client.submit_tasks(
            [TaskDescription(name="work", model=FixedDurationModel(35.0))]
        )
        yield from client.wait_tasks(tasks)
        yield env.timeout(20.0)
        return tasks

    tasks = env.run(env.process(main(env)))
    box["alive_after_restart"] = all(
        server.alive
        for server in box["deployment"].service_model.servers.values()
    )
    client.close()
    return session, box, injector, t0, tasks


def test_outage_degrades_without_stalling_tasks():
    session, box, injector, t0, tasks = _run(seed=3)
    deployment = box["deployment"]
    assert all(t.state == TaskState.DONE for t in tasks)

    down_at = t0 + OUTAGE_DELAY
    up_at = down_at + OUTAGE_LENGTH
    # The namespace servers were really down: nothing stored in the
    # window, but records exist on both sides of it.
    for namespace in (WORKFLOW, HARDWARE):
        records = deployment.store(namespace).records()
        assert not [r for r in records if down_at < r.time < up_at]
        assert [r for r in records if r.time >= up_at]

    # Clients retried, then dropped, then recovered: gaps were recorded.
    models = list(deployment.hw_monitor_models())
    clients = [m.client for m in models if m.client is not None]
    assert clients
    assert any(c.retries > 0 for c in clients)
    assert any(c.dropped > 0 for c in clients)
    assert any(c.gaps >= 1 for c in clients)
    assert all(not c.open_gaps for c in clients)
    assert session.tracer.count("soma.gap") >= 1
    assert session.tracer.count("soma.publish_failed") >= 1


def test_outage_health_counters_reach_the_store():
    session, box, injector, t0, tasks = _run(seed=3)
    deployment = box["deployment"]
    store = deployment.store(HARDWARE)
    up_at = t0 + OUTAGE_DELAY + OUTAGE_LENGTH
    post = [r for r in store.records() if r.time >= up_at]
    assert any(
        f"SOMA/health/{r.source}/dropped" in r.data
        and r.data[f"SOMA/health/{r.source}/dropped"] > 0
        for r in post
    )


def test_outage_restart_is_planned_not_manual():
    session, box, injector, t0, tasks = _run(seed=3)
    kinds = [event.kind for _t, event in injector.applied]
    assert kinds == ["service_outage"]
    assert session.tracer.count("fault.inject") == 1
    assert session.tracer.count("fault.restore") == 1
    # Every namespace server was back up before the run's own teardown.
    assert box["alive_after_restart"]


def test_outage_scenario_is_deterministic():
    a = _run(seed=29)
    b = _run(seed=29)
    assert trace_signature(a[0]) == trace_signature(b[0])
    assert metric_signature(a[1]["deployment"]) == metric_signature(
        b[1]["deployment"]
    )
