"""Chaos battery: the facility service under shard outage + tenant flood.

Extends the PR 1 degradation contract ("drop sample, record gap, never
stall tasks") to the shared deployment:

* a **shard outage** may cost the victim shard's tenants samples —
  recorded as publish failures and, after recovery, closed gaps — but
  task progress never stalls and the surviving shards serve untouched;
* a **tenant flood** against an admission-controlled shard burns the
  flooding tenant's budget only: every other tenant's bucket, on every
  shard, stays clean;
* recovery is *deterministic*: the same (spec, plan, seed) triple
  yields a byte-identical facility manifest, replay after replay.

The acceptance-scale scenario (200 pilots × 500 tasks = 10⁵ monitored
samples under both faults at once) runs last, slow-marked.
"""

import pytest

from repro.experiments.facility import (
    FacilitySpec,
    facility_chaos_plan,
    run_facility,
)
from repro.faults import FaultPlan
from repro.soma.sharding import shard_key

pytestmark = pytest.mark.slow

SMALL = FacilitySpec(
    pilots=16,
    shards=2,
    service_nodes=2,
    tasks_per_pilot=80,
    concurrency=4,
    period=30.0,
)


def test_new_fault_kinds_validate():
    plan = FaultPlan().shard_outage(10.0, "s00", duration=5.0)
    plan.tenant_flood(20.0, "s01", tenant="noisy", rate=10.0, duration=5.0)
    kinds = [event.kind for event in plan.events]
    assert kinds == ["shard_outage", "tenant_flood"]
    with pytest.raises(ValueError):
        FaultPlan().tenant_flood(
            0.0, "s00", tenant="noisy", rate=0.0, duration=5.0
        )
    with pytest.raises(ValueError):
        FaultPlan().tenant_flood(
            0.0, "s00", tenant="noisy", rate=1.0, duration=float("inf")
        )


def victim_of(spec: FacilitySpec) -> str:
    ring = spec.soma_config().make_ring()
    return ring.owner(shard_key(spec.tenants()[0], spec.namespaces[0]))


def test_shard_outage_contained_to_victim():
    spec = SMALL
    victim = victim_of(spec)
    plan = FaultPlan().shard_outage(120.0, victim, duration=240.0)
    result = run_facility(spec, seed=7, fault_plan=plan)

    assert result.faults_applied == 1
    # The contract: samples may die, tasks may not.
    assert result.stalled_tasks == 0
    assert result.samples_generated == spec.pilots * spec.tasks_per_pilot
    assert result.publishes_failed > 0
    assert result.client_drops > 0
    # Recovery happened inside the run: failed tenants resumed
    # publishing, which is what closes a gap and stamps its extent.
    assert result.gaps > 0
    assert result.gap_seconds > 0.0
    # Surviving shard untouched: no errors on any non-victim server,
    # and its stores kept growing.
    for name, stats in result.queue_stats.items():
        if not name.startswith(f"{victim}."):
            assert stats["errors"] == 0, f"fault leaked into {name}"
    survivor_records = sum(
        count
        for key, count in result.store_records.items()
        if not key.startswith(f"{victim}.")
    )
    assert survivor_records > 0


def test_shard_outage_recovery_is_deterministic():
    spec = SMALL
    plan = FaultPlan().shard_outage(120.0, victim_of(spec), duration=180.0)
    first = run_facility(spec, seed=11, fault_plan=plan).payload()
    again = run_facility(spec, seed=11, fault_plan=plan).payload()
    assert first == again


def test_tenant_flood_burns_only_the_flooder():
    spec = FacilitySpec(
        pilots=16,
        shards=2,
        service_nodes=2,
        tasks_per_pilot=80,
        concurrency=4,
        period=30.0,
        admission_rate=0.5,
    )
    victim = victim_of(spec)
    plan = FaultPlan().tenant_flood(
        60.0, victim, tenant="noisy", rate=50.0, duration=120.0
    )
    result = run_facility(spec, seed=7, fault_plan=plan)

    assert result.faults_applied == 1
    assert result.stalled_tasks == 0
    # The flood hammered the victim shard's gate...
    rejected = result.admission[victim]["rejected"]
    assert rejected.get("noisy", 0) > 0
    # ...and nobody else's budget was touched, on any shard: real
    # tenants publish twice per 30 s period, far under 0.5 tokens/s.
    for instance, counters in result.admission.items():
        others = {
            t: n for t, n in counters["rejected"].items() if t != "noisy"
        }
        assert not others, f"flood spilled onto {others} at {instance}"
    # Real tenants' pipelines were unaffected end to end.
    assert result.publishes_failed == 0
    assert result.samples_published == result.samples_generated


def test_acceptance_scale_facility_under_chaos():
    """ISSUE 9 acceptance: ≥200 pilots, ≥10⁵ samples, outage + flood,
    zero task stalls."""
    spec = FacilitySpec(
        pilots=200,
        shards=4,
        service_nodes=4,
        tasks_per_pilot=500,
        concurrency=8,
        period=60.0,
        admission_rate=0.5,
    )
    result = run_facility(spec, seed=3, fault_plan=facility_chaos_plan(spec))

    assert result.faults_applied == 2
    assert result.samples_generated >= 100_000
    assert result.samples_generated == spec.pilots * spec.tasks_per_pilot
    assert result.stalled_tasks == 0
    # The outage cost samples and the gaps prove the clients noticed
    # *and recovered* — a gap only closes on a later successful publish.
    assert result.client_drops > 0
    assert result.gaps > 0
    # The flood tenant was throttled; no real tenant ever was.
    all_rejected: dict[str, int] = {}
    for counters in result.admission.values():
        for tenant, count in counters["rejected"].items():
            all_rejected[tenant] = all_rejected.get(tenant, 0) + count
    assert all_rejected.get("noisy", 0) > 0
    assert set(all_rejected) == {"noisy"}
    # Every store on every shard saw traffic.
    assert all(count > 0 for count in result.store_records.values())
