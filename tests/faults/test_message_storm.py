"""Chaos scenario: a message storm (drop + duplicate + delay).

For a 30-second window a quarter of RPC messages are lost, a fifth of
requests are delivered twice, and a third are delayed.  The retry
policies must ride it out: the workflow completes, monitoring keeps
flowing (with retries and possibly drops), duplicates do not corrupt
the stores beyond duplicated records, and the whole storm is
deterministic.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.rp import FixedDurationModel, TaskDescription, TaskState
from repro.soma import HARDWARE, SomaConfig, WORKFLOW

from tests.faults.harness import (
    arm,
    boot,
    metric_signature,
    trace_signature,
)

pytestmark = pytest.mark.slow

RETRY = RetryPolicy(
    max_attempts=4,
    base_delay=0.2,
    multiplier=2.0,
    max_delay=2.0,
    jitter=0.1,
    deadline=20.0,
    timeout=5.0,
)

SOMA = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc", "rp"),
    monitoring_frequency=2.0,
    retry=RETRY,
)

STORM_AT = 5.0
STORM_LENGTH = 30.0


def _plan(t0):
    return (
        FaultPlan()
        .rpc_drop(
            at=t0 + STORM_AT,
            probability=0.25,
            duration=STORM_LENGTH,
            stall=2.0,
        )
        .rpc_duplicate(
            at=t0 + STORM_AT, probability=0.2, duration=STORM_LENGTH
        )
        .rpc_delay(
            at=t0 + STORM_AT,
            probability=0.3,
            delay=0.5,
            duration=STORM_LENGTH,
        )
    )


def _run(seed):
    session, client, box = boot(nodes=2, seed=seed, soma=SOMA)
    env = session.env
    t0 = env.now
    injector = arm(session, _plan(t0))

    def main(env):
        tasks = client.submit_tasks(
            [TaskDescription(name="work", model=FixedDurationModel(45.0))]
        )
        yield from client.wait_tasks(tasks)
        yield env.timeout(15.0)
        return tasks

    tasks = env.run(env.process(main(env)))
    client.close()
    return session, box, injector, t0, tasks


def test_storm_completes_cleanly():
    session, box, injector, t0, tasks = _run(seed=41)
    gate = injector.message_faults

    assert all(t.state == TaskState.DONE for t in tasks)
    # The storm really happened and really ended.
    assert gate.decided > 0
    assert (
        gate.dropped_requests
        + gate.dropped_responses
        + gate.duplicated
        + gate.delayed
    ) > 0
    assert not gate.active

    # Clients absorbed it through retries; nothing deadlocked (the run
    # returned) and publishing continued after the window closed.
    deployment = box["deployment"]
    clients = [
        m.client
        for m in deployment.hw_monitor_models()
        if m.client is not None
    ]
    storm_end = t0 + STORM_AT + STORM_LENGTH
    for namespace in (WORKFLOW, HARDWARE):
        records = deployment.store(namespace).records()
        assert [r for r in records if r.time > storm_end]
    if gate.dropped_requests + gate.dropped_responses > 0:
        total_retries = sum(c.retries for c in clients)
        rpmon = deployment.rp_monitor_model
        if rpmon is not None and rpmon.client is not None:
            total_retries += rpmon.client.retries
        assert total_retries > 0


def test_storm_is_deterministic():
    a = _run(seed=41)
    b = _run(seed=41)
    assert trace_signature(a[0]) == trace_signature(b[0])
    assert metric_signature(a[1]["deployment"]) == metric_signature(
        b[1]["deployment"]
    )
    # Gate counters are part of the replayed state too.
    ga, gb = a[2].message_faults, b[2].message_faults
    assert (ga.decided, ga.dropped_requests, ga.dropped_responses) == (
        gb.decided,
        gb.dropped_requests,
        gb.dropped_responses,
    )
    assert (ga.duplicated, ga.delayed) == (gb.duplicated, gb.delayed)
