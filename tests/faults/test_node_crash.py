"""Chaos scenario: a compute node crashes mid-task.

The task resident on the dead node must fail cleanly, every other task
must finish, the monitoring stack must survive, and the whole run must
replay bit-identically under the same (seed, plan) pair.
"""

import pytest

from repro.faults import FaultPlan
from repro.rp import FixedDurationModel, TaskDescription, TaskState
from repro.soma import HARDWARE, SomaConfig, WORKFLOW

from tests.faults.harness import arm, boot, trace_signature

pytestmark = pytest.mark.slow

SOMA = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc",),
    monitoring_frequency=5.0,
)


def _run(seed):
    session, client, box = boot(nodes=2, seed=seed, soma=SOMA)
    env = session.env
    victim = box["pilot"].compute_nodes[0]
    crash_at = env.now + 5.0
    injector = arm(
        session, FaultPlan().node_crash(at=crash_at, node=victim.name)
    )

    def main(env):
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name="a", model=FixedDurationModel(30.0), ranks=40
                ),
                TaskDescription(
                    name="b", model=FixedDurationModel(30.0), ranks=40
                ),
            ]
        )
        yield from client.wait_tasks(tasks)
        yield env.timeout(10.0)
        return tasks

    tasks = env.run(env.process(main(env)))
    client.close()
    return session, box, injector, victim, tasks


def test_crash_fails_resident_task_only():
    session, box, injector, victim, tasks = _run(seed=11)
    states = sorted(t.state for t in tasks)
    assert states == [TaskState.DONE, TaskState.FAILED]
    assert not victim.alive
    # The dead task's failure is a NodeFailure surfaced through the
    # executor, not a hang or a crash of the run.
    failed = next(t for t in tasks if t.state == TaskState.FAILED)
    assert "failed" in repr(failed.exception) or failed.exception is not None
    # The injector fired exactly once, at the planned instant.
    assert [event.kind for _t, event in injector.applied] == ["node_crash"]
    assert session.tracer.count("fault.inject") == 1


def test_crash_leaves_monitoring_on_surviving_nodes_alive():
    session, box, injector, victim, tasks = _run(seed=11)
    deployment = box["deployment"]
    survivors = [
        m
        for m in deployment.hw_monitor_models()
        if m.client is not None and m.client.name != f"hwmon@{victim.name}"
    ]
    assert survivors
    # Surviving monitors kept publishing after the crash.
    crash_time = injector.applied[0][0]
    store = deployment.store(HARDWARE)
    after = [r for r in store.records() if r.time > crash_time + 5.0]
    assert any(
        r.source == m.client.name for m in survivors for r in after
    )


def test_crash_scenario_is_deterministic():
    session_a, *_ = _run(seed=23)
    session_b, *_ = _run(seed=23)
    assert trace_signature(session_a) == trace_signature(session_b)
