"""Chaos scenario: a rack partition separates monitors from the service.

With ``rack_size=1`` every node is its own rack, so severing the pair
(compute node, service node) blocks the hardware monitor's publishes.
Under its retry policy the client retries, gives up, drops samples and
opens an observability gap; when the partition heals, publishing
resumes and the gap is recorded as a ``soma.gap`` trace record.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.rp import FixedDurationModel, TaskDescription, TaskState
from repro.soma import HARDWARE, SomaConfig

from tests.faults.harness import arm, boot, client_by_name, trace_signature

pytestmark = pytest.mark.slow

RETRY = RetryPolicy(
    max_attempts=2,
    base_delay=0.5,
    multiplier=2.0,
    max_delay=2.0,
    jitter=0.1,
    deadline=6.0,
    timeout=2.0,
)

SOMA = SomaConfig(
    namespaces=(HARDWARE,),
    monitors=("proc",),
    monitoring_frequency=5.0,
    retry=RETRY,
)


def _run(seed):
    session, client, box = boot(nodes=2, seed=seed, soma=SOMA, rack_size=1)
    env = session.env
    network = session.cluster.network
    deployment = box["deployment"]
    victim = box["pilot"].compute_nodes[0]
    service_node = deployment.service_model.servers[HARDWARE].node
    racks = (network.rack_of(victim), network.rack_of(service_node))
    assert racks[0] != racks[1]
    t0 = env.now
    injector = arm(
        session,
        FaultPlan().partition(at=t0 + 6.0, racks=racks, duration=20.0),
    )

    def main(env):
        tasks = client.submit_tasks(
            [TaskDescription(name="work", model=FixedDurationModel(40.0))]
        )
        yield from client.wait_tasks(tasks)
        yield env.timeout(20.0)
        return tasks

    tasks = env.run(env.process(main(env)))
    client.close()
    return session, box, injector, victim, tasks


def test_partition_degrades_then_heals():
    session, box, injector, victim, tasks = _run(seed=5)
    network = session.cluster.network
    deployment = box["deployment"]
    hwmon = client_by_name(deployment, f"hwmon@{victim.name}")

    # The workflow itself is untouched: intra-node compute has no
    # endpoints on the severed path.
    assert all(t.state == TaskState.DONE for t in tasks)

    # The monitor hit the partition: transfers parked, attempts timed
    # out, samples were dropped, a gap opened and then closed on heal.
    assert network.blocked_transfers > 0
    assert not network.partitioned  # healed by the plan
    assert hwmon.dropped > 0
    assert hwmon.retries > 0
    assert hwmon.gaps >= 1
    assert hwmon.gap_seconds > 0
    assert not hwmon.open_gaps
    gap_records = session.tracer.select("soma.gap")
    assert any(r.data["source"] == hwmon.name for r in gap_records)

    # Publishing resumed after the heal.
    heal_time = next(
        r.time for r in session.tracer.select("fault.restore")
    )
    store = deployment.store(HARDWARE)
    assert any(
        r.source == hwmon.name and r.time > heal_time
        for r in store.records()
    )


def test_partition_gap_is_visible_in_published_health():
    session, box, injector, victim, tasks = _run(seed=5)
    deployment = box["deployment"]
    hwmon_name = f"hwmon@{victim.name}"
    store = deployment.store(HARDWARE)
    post = [r for r in store.records() if r.source == hwmon_name][-1]
    health = f"SOMA/health/{hwmon_name}"
    assert f"{health}/dropped" in post.data
    assert post.data[f"{health}/dropped"] > 0
    assert post.data[f"{health}/gap_seconds"] > 0


def test_partition_scenario_is_deterministic():
    session_a, *_ = _run(seed=17)
    session_b, *_ = _run(seed=17)
    assert trace_signature(session_a) == trace_signature(session_b)
