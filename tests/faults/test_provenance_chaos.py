"""Chaos regression: the why-chain names the injected fault windows.

A sharded deployment runs a fixed-duration task while the fault plan
takes shard ``s00`` down and drops RPCs with a stall.  The provenance
graph built from that run must still validate, surface both plan
windows as fault events, annotate the edges that overlap them, and —
the point of the exercise — render a ``why`` chain for the degraded
task that names the injected windows.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.provenance import (
    build_graph,
    chain_components,
    render_why,
    resolve_target,
    set_default_provenance,
    validate_graph,
    why_chain,
)
from repro.rp import FixedDurationModel, TaskDescription
from repro.soma import HARDWARE, WORKFLOW, SomaConfig
from repro.telemetry import drain_telemetries, set_default_telemetry

from tests.faults.harness import arm, boot

pytestmark = pytest.mark.slow

RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.25,
    multiplier=2.0,
    max_delay=2.0,
    jitter=0.1,
    deadline=5.0,
    timeout=2.0,
)

SOMA = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc",),
    monitoring_frequency=5.0,
    retry=RETRY,
    shards=2,
)

OUTAGE_AT = 8.0
OUTAGE_FOR = 15.0
DROP_AT = 10.0
DROP_FOR = 10.0


@pytest.fixture(scope="module")
def chaos_graph():
    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    drain_telemetries()
    try:
        session, client, _box = boot(nodes=2, seed=3, soma=SOMA)
        env = session.env
        plan = (
            FaultPlan()
            .shard_outage(OUTAGE_AT, "s00", duration=OUTAGE_FOR)
            .rpc_drop(DROP_AT, probability=0.9, duration=DROP_FOR, stall=2.0)
        )
        injector = arm(session, plan)

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(name="work", model=FixedDurationModel(35.0))]
            )
            yield from client.wait_tasks(tasks)
            yield env.timeout(20.0)

        env.run(env.process(main(env)))
        client.close()
        graph = build_graph(hub=session.telemetry, plan=injector.plan)
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
        drain_telemetries()
    return graph


def test_chaos_graph_still_validates(chaos_graph):
    violations = validate_graph(chaos_graph)
    assert violations == [], [v.format() for v in violations]


def test_plan_windows_surface_as_fault_events(chaos_graph):
    starts = {e.label: e.t for e in chaos_graph.by_kind("fault.start")}
    ends = {e.label: e.t for e in chaos_graph.by_kind("fault.end")}
    assert starts["fault:shard_outage"] == OUTAGE_AT
    assert ends["fault:shard_outage"] == OUTAGE_AT + OUTAGE_FOR
    assert starts["fault:rpc_drop"] == DROP_AT
    assert ends["fault:rpc_drop"] == DROP_AT + DROP_FOR


def test_overlapping_edges_carry_fault_annotations(chaos_graph):
    annotated = [e for e in chaos_graph.edges if e.attrs.get("faults")]
    assert annotated, "no edges annotated despite two fault windows"
    kinds = {
        ann.split("@", 1)[0] for e in annotated for ann in e.attrs["faults"]
    }
    assert kinds == {"shard_outage", "rpc_drop"}
    for edge in annotated:
        # Only positive-duration edges overlapping a window qualify.
        assert edge.duration > 0.0
        assert edge.t_src < max(OUTAGE_AT + OUTAGE_FOR, DROP_AT + DROP_FOR)


def test_why_chain_for_degraded_task_names_the_windows(chaos_graph):
    uid = sorted(chaos_graph.task_events)[-1]
    target = resolve_target(chaos_graph, uid)
    assert target is not None
    chain = why_chain(chaos_graph, target)
    assert any(e.attrs.get("faults") for e in chain)
    rendered = render_why(chaos_graph, target, chain, top=8)
    assert "!! during" in rendered
    assert "shard_outage@[" in rendered
    assert "rpc_drop@[" in rendered
    # The chain still walks across component boundaries under chaos.
    assert len(chain_components(chaos_graph, chain)) >= 2
