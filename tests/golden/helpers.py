"""Golden-snapshot comparison helper.

Goldens live in ``tests/golden/data/``.  A failing comparison prints a
unified diff; regenerate deliberately with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/golden -q

and review the diff in version control like any other code change.
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

DATA = Path(__file__).parent / "data"


def check_golden(name: str, text: str) -> None:
    path = DATA / name
    if os.environ.get("REPRO_UPDATE_GOLDENS", "").strip() == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    if not path.exists():
        raise AssertionError(
            f"golden {name!r} missing; run with REPRO_UPDATE_GOLDENS=1 "
            "to create it"
        )
    expected = path.read_text(encoding="utf-8")
    if text != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                text.splitlines(),
                fromfile=f"golden/{name}",
                tofile="actual",
                lineterm="",
            )
        )
        raise AssertionError(f"golden {name!r} drifted:\n{diff}")
