"""Golden snapshots: dashboard render, flame summary, span table.

Each snapshot is produced from a fully deterministic fixed-seed run,
so any drift is a real behaviour change — the diff in ``data/`` shows
exactly what the user-visible output did differently.
"""

from __future__ import annotations

import pytest

from repro.experiments import TUNING, run_openfoam_experiment
from repro.soma import render_dashboard
from repro.telemetry import (
    drain_telemetries,
    flame_summary,
    render_span_table,
    set_default_telemetry,
    top_critical_spans,
)

from tests.golden.helpers import check_golden

SEED = 11


@pytest.fixture(scope="module")
def traced_openfoam():
    previous = set_default_telemetry(True)
    drain_telemetries()
    try:
        result = run_openfoam_experiment(TUNING, seed=SEED)
    finally:
        set_default_telemetry(previous)
        hubs = drain_telemetries()
    return result, hubs[0]


def test_dashboard_render_golden(traced_openfoam):
    result, _hub = traced_openfoam
    check_golden(
        "dashboard_openfoam_tuning_seed11.txt",
        render_dashboard(result.deployment) + "\n",
    )


def test_flame_summary_golden(traced_openfoam):
    _result, hub = traced_openfoam
    check_golden(
        "flame_openfoam_tuning_seed11.txt",
        flame_summary(hub, top=15) + "\n",
    )


def test_span_table_golden(traced_openfoam):
    _result, hub = traced_openfoam
    check_golden(
        "span_table_openfoam_tuning_seed11.txt",
        render_span_table(top_critical_spans(hub, k=12)) + "\n",
    )
