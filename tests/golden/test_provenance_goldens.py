"""Golden snapshots for ``python -m repro why`` output.

One fixed-seed adaptive DDMD run backs both snapshots: the rendered
why-chain of a deterministic late task and the critical-path edge
table.  ``run_workflow`` restarts every process-global uid mint, so the
rendering depends only on (experiment, seed) — any drift in ``data/``
is a real change to either the builder's edge wiring or the renderers.

Regenerate deliberately with ``REPRO_UPDATE_GOLDENS=1``.
"""

from __future__ import annotations

import pytest

from repro.provenance import (
    build_graph,
    critical_path,
    render_critical_path,
    render_why,
    resolve_target,
    set_default_provenance,
    validate_graph,
    why_chain,
)
from repro.telemetry import drain_telemetries, set_default_telemetry

from tests.golden.helpers import check_golden

SEED = 7


@pytest.fixture(scope="module")
def adaptive_graph():
    from repro.experiments import adaptive_experiment, run_ddmd_experiment

    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    drain_telemetries()
    try:
        result = run_ddmd_experiment(
            adaptive_experiment(), seed=SEED, adaptive_analysis=True
        )
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
    graph = build_graph(result)
    drain_telemetries()
    assert validate_graph(graph) == []
    return graph


def test_why_task_golden(adaptive_graph):
    graph = adaptive_graph
    target_uid = sorted(graph.task_events)[-1]
    target = resolve_target(graph, target_uid)
    chain = why_chain(graph, target)
    check_golden(
        "why_ddmd_adaptive_seed7.txt",
        render_why(graph, target, chain, top=12) + "\n",
    )


def test_why_run_golden(adaptive_graph):
    graph = adaptive_graph
    target = resolve_target(graph, "run")
    chain = why_chain(graph, target)
    check_golden(
        "why_run_ddmd_adaptive_seed7.txt",
        render_why(graph, target, chain, top=12) + "\n",
    )


def test_critical_path_table_golden(adaptive_graph):
    graph = adaptive_graph
    path = critical_path(graph)
    check_golden(
        "critical_path_ddmd_adaptive_seed7.txt",
        render_critical_path(graph, path, top=10) + "\n",
    )
