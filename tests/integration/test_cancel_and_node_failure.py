"""Cancellation and node-failure behaviour across the stack."""


from repro.platform import NodeFailure, summit_like
from repro.rp import (
    Client,
    ComputeModel,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)


def boot(nodes=2, seed=1):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        return pilot

    pilot = env.run(env.process(main(env)))
    return session, client, pilot


class TestCancellation:
    def test_cancel_running_task(self):
        session, client, pilot = boot()
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(model=ComputeModel(1000.0), ranks=10)]
            )
            yield env.timeout(20)
            assert tasks[0].state == TaskState.AGENT_EXECUTING
            client.cancel_tasks(tasks)
            yield from client.wait_tasks(tasks)
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.CANCELED
        # Resources returned after the cancel.
        for node in pilot.compute_nodes:
            assert node.free_cores == node.total_cores
        # No phantom compute left running on the nodes.
        for node in pilot.compute_nodes:
            assert node.busy_cores.value == 0
        client.close()

    def test_cancel_waiting_task_lets_queue_advance(self):
        session, client, pilot = boot(nodes=1)
        env = session.env

        def main(env):
            blocker = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(50.0), ranks=42)]
            )
            # Let the blocker reach the agent and claim the node before
            # the second task is even submitted.
            yield env.timeout(5)
            assert blocker[0].state == TaskState.AGENT_EXECUTING
            waiting = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(5.0), ranks=42)]
            )
            yield env.timeout(10)
            client.cancel_tasks(waiting)
            yield from client.wait_tasks(blocker + waiting)
            return blocker[0], waiting[0]

        blocker, waiting = env.run(env.process(main(env)))
        assert blocker.state == TaskState.DONE
        assert waiting.state == TaskState.CANCELED
        client.close()

    def test_cancel_final_task_is_noop(self):
        session, client, _ = boot()
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(1.0))]
            )
            yield from client.wait_tasks(tasks)
            client.cancel_tasks(tasks)  # no effect, no exception
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.DONE
        client.close()


class TestNodeFailure:
    def test_task_on_failed_node_fails(self):
        session, client, pilot = boot(nodes=2)
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(
                        name="victim",
                        model=ComputeModel(500.0),
                        ranks=10,
                        multi_node=False,
                    )
                ]
            )
            yield env.timeout(60)
            victim_node = session.cluster.node_by_name(tasks[0].nodelist[0])
            victim_node.fail()
            yield from client.wait_tasks(tasks)
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.FAILED
        assert isinstance(task.exception, NodeFailure)
        client.close()

    def test_scheduler_avoids_failed_node(self):
        session, client, pilot = boot(nodes=2)
        env = session.env
        dead = pilot.compute_nodes[0]
        dead.fail()

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(
                        name=f"t{i}",
                        model=FixedDurationModel(3.0),
                        ranks=4,
                        multi_node=False,
                    )
                    for i in range(4)
                ]
            )
            yield from client.wait_tasks(tasks)
            return tasks

        tasks = env.run(env.process(main(env)))
        for task in tasks:
            assert task.state == TaskState.DONE
            assert dead.name not in task.nodelist
        client.close()

    def test_survivors_unaffected_by_failure(self):
        session, client, pilot = boot(nodes=2)
        env = session.env

        def main(env):
            a = client.submit_tasks(
                [
                    TaskDescription(
                        name="a",
                        model=FixedDurationModel(100.0),
                        ranks=10,
                        multi_node=False,
                        tags={"node": pilot.compute_nodes[0].name},
                    )
                ]
            )
            b = client.submit_tasks(
                [
                    TaskDescription(
                        name="b",
                        model=FixedDurationModel(100.0),
                        ranks=10,
                        multi_node=False,
                        tags={"node": pilot.compute_nodes[1].name},
                    )
                ]
            )
            yield env.timeout(60)
            pilot.compute_nodes[0].fail()
            yield from client.wait_tasks(a + b)
            return a[0], b[0]

        a, b = env.run(env.process(main(env)))
        assert a.state == TaskState.FAILED
        assert b.state == TaskState.DONE
        client.close()
