"""Reproducibility: same seed -> bit-identical results."""

import pytest

from repro.experiments import (
    TUNING,
    execution_times_by_ranks,
    run_openfoam_experiment,
)
from repro.experiments.ddmd_exps import (
    SCALING_B,
    pipeline_durations,
    run_ddmd_experiment,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.rp import FixedDurationModel, TaskDescription
from repro.soma import HARDWARE, SomaConfig, WORKFLOW

from tests.faults.harness import arm, boot, metric_signature, trace_signature


def test_openfoam_run_is_deterministic():
    a = run_openfoam_experiment(TUNING, seed=33)
    b = run_openfoam_experiment(TUNING, seed=33)
    assert a.makespan == b.makespan
    assert execution_times_by_ranks(a) == execution_times_by_ranks(b)


def test_openfoam_seed_changes_results():
    a = run_openfoam_experiment(TUNING, seed=33)
    b = run_openfoam_experiment(TUNING, seed=34)
    assert a.makespan != b.makespan


def test_ddmd_run_is_deterministic():
    exp = SCALING_B(4, "exclusive").with_updates(
        soma_nodes=1, soma_ranks_per_namespace=2
    )
    a = run_ddmd_experiment(exp, seed=9)
    b = run_ddmd_experiment(exp, seed=9)
    assert pipeline_durations(a) == pipeline_durations(b)


def test_paired_noise_across_configurations():
    """Common random numbers: the same task in different monitoring
    configurations draws identical duration noise, so config deltas
    are not noise artefacts."""
    base = SCALING_B(4, "none").with_updates(soma_nodes=0)
    mon = SCALING_B(4, "exclusive").with_updates(
        soma_nodes=1, soma_ranks_per_namespace=2
    )
    a = run_ddmd_experiment(base, seed=9)
    b = run_ddmd_experiment(mon, seed=9)

    def noise_of(result):
        out = {}
        for task in result.tasks.values():
            if task.description.metadata.get("stage") == "simulation":
                profile = task.result.rank_profiles[0]
                out[task.description.name] = profile.seconds_by_region[
                    "gpu_kernel"
                ]
        return out

    na, nb = noise_of(a), noise_of(b)
    assert na.keys() == nb.keys()
    for name in na:
        assert na[name] == pytest.approx(nb[name])


def _chaos_run(seed):
    """A run with every fault class active at once."""
    soma = SomaConfig(
        namespaces=(WORKFLOW, HARDWARE),
        monitors=("proc", "rp"),
        monitoring_frequency=4.0,
        retry=RetryPolicy(
            max_attempts=3,
            base_delay=0.2,
            jitter=0.2,
            deadline=6.0,
            timeout=2.0,
        ),
    )
    session, client, box = boot(nodes=2, seed=seed, soma=soma, rack_size=1)
    env = session.env
    network = session.cluster.network
    t0 = env.now
    victim = box["pilot"].compute_nodes[0]
    other = box["pilot"].compute_nodes[1]
    service_node = box["deployment"].service_model.servers[HARDWARE].node
    plan = (
        FaultPlan()
        .node_slowdown(at=t0 + 4.0, node=other.name, factor=0.5, duration=10.0)
        .rpc_drop(at=t0 + 5.0, probability=0.2, duration=15.0, stall=1.0)
        .partition(
            at=t0 + 8.0,
            racks=(network.rack_of(victim), network.rack_of(service_node)),
            duration=8.0,
        )
        .service_outage(at=t0 + 22.0, duration=6.0)
        .profile_outage(at=t0 + 24.0, duration=4.0)
        .node_crash(at=t0 + 30.0, node=victim.name)
    )
    arm(session, plan)

    def main(env):
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name="x", model=FixedDurationModel(40.0), ranks=40
                ),
                TaskDescription(
                    name="y", model=FixedDurationModel(40.0), ranks=40
                ),
            ]
        )
        yield from client.wait_tasks(tasks)
        yield env.timeout(15.0)

    env.run(env.process(main(env)))
    client.close()
    return session, box["deployment"]


def test_chaos_run_is_deterministic():
    """Same seed + same FaultPlan => identical traces and metric streams."""
    sa, da = _chaos_run(seed=77)
    sb, db = _chaos_run(seed=77)
    assert trace_signature(sa) == trace_signature(sb)
    assert metric_signature(da) == metric_signature(db)


def test_chaos_seed_changes_the_run():
    sa, _ = _chaos_run(seed=77)
    sb, _ = _chaos_run(seed=78)
    assert trace_signature(sa) != trace_signature(sb)
