"""Reproducibility: same seed -> bit-identical results."""

import pytest

from repro.experiments import (
    TUNING,
    execution_times_by_ranks,
    run_openfoam_experiment,
)
from repro.experiments.ddmd_exps import (
    SCALING_B,
    pipeline_durations,
    run_ddmd_experiment,
)


def test_openfoam_run_is_deterministic():
    a = run_openfoam_experiment(TUNING, seed=33)
    b = run_openfoam_experiment(TUNING, seed=33)
    assert a.makespan == b.makespan
    assert execution_times_by_ranks(a) == execution_times_by_ranks(b)


def test_openfoam_seed_changes_results():
    a = run_openfoam_experiment(TUNING, seed=33)
    b = run_openfoam_experiment(TUNING, seed=34)
    assert a.makespan != b.makespan


def test_ddmd_run_is_deterministic():
    exp = SCALING_B(4, "exclusive").with_updates(
        soma_nodes=1, soma_ranks_per_namespace=2
    )
    a = run_ddmd_experiment(exp, seed=9)
    b = run_ddmd_experiment(exp, seed=9)
    assert pipeline_durations(a) == pipeline_durations(b)


def test_paired_noise_across_configurations():
    """Common random numbers: the same task in different monitoring
    configurations draws identical duration noise, so config deltas
    are not noise artefacts."""
    base = SCALING_B(4, "none").with_updates(soma_nodes=0)
    mon = SCALING_B(4, "exclusive").with_updates(
        soma_nodes=1, soma_ranks_per_namespace=2
    )
    a = run_ddmd_experiment(base, seed=9)
    b = run_ddmd_experiment(mon, seed=9)

    def noise_of(result):
        out = {}
        for task in result.tasks.values():
            if task.description.metadata.get("stage") == "simulation":
                profile = task.result.rank_profiles[0]
                out[task.description.name] = profile.seconds_by_region[
                    "gpu_kernel"
                ]
        return out

    na, nb = noise_of(a), noise_of(b)
    assert na.keys() == nb.keys()
    for name in na:
        assert na[name] == pytest.approx(nb[name])
