"""Full-stack integration: complete experiment runs, small scale."""

import numpy as np
import pytest

from repro.experiments import (
    SCALING_B,
    TUNING,
    execution_times_by_ranks,
    pipeline_durations,
    run_ddmd_experiment,
    run_openfoam_experiment,
    tuning_experiment,
)
from repro.soma import (
    HARDWARE,
    PERFORMANCE,
    WORKFLOW,
    cpu_utilization_series,
    load_imbalance,
    rank_region_breakdown,
    task_throughput,
)


@pytest.fixture(scope="module")
def openfoam_tuning():
    return run_openfoam_experiment(TUNING, seed=11)


class TestOpenFOAMTuning:
    def test_all_tasks_complete(self, openfoam_tuning):
        res = openfoam_tuning
        times = execution_times_by_ranks(res)
        assert set(times) == {20, 41, 82, 164}
        assert all(len(v) == 1 for v in times.values())

    def test_strong_scaling_order(self, openfoam_tuning):
        times = execution_times_by_ranks(openfoam_tuning)
        assert times[20][0] > times[82][0]
        assert times[41][0] > times[164][0]

    def test_all_three_namespaces_populated(self, openfoam_tuning):
        res = openfoam_tuning
        assert len(res.deployment.store(WORKFLOW)) > 0
        assert len(res.deployment.store(HARDWARE)) > 0
        assert len(res.deployment.store(PERFORMANCE)) == 4  # one per task

    def test_fig7_series_and_markers(self, openfoam_tuning):
        from repro.soma import task_state_observations

        res = openfoam_tuning
        series = cpu_utilization_series(res.deployment.store(HARDWARE))
        assert len(series) == 4  # one line per compute node
        markers = task_state_observations(
            res.deployment.store(WORKFLOW), event="AGENT_EXECUTING"
        )
        app_uids = {t.uid for t in res.application_tasks}
        assert app_uids <= {uid for _, uid in markers}

    def test_fig5_profile_data(self, openfoam_tuning):
        res = openfoam_tuning
        task20 = res.payload["by_ranks"][20][0]
        store = res.deployment.store(PERFORMANCE)
        breakdown = rank_region_breakdown(store, task20.uid)
        assert len(breakdown) == 20
        imbalance = load_imbalance(store, task20.uid)
        assert imbalance >= 1.0

    def test_throughput_series(self, openfoam_tuning):
        res = openfoam_tuning
        rates = task_throughput(res.deployment.store(WORKFLOW))
        assert rates  # at least one interval
        assert all(rate >= 0 for _, rate in rates)

    def test_fig8_timeline(self, openfoam_tuning):
        from repro.analysis import RUNNING, build_timeline

        res = openfoam_tuning
        timeline = build_timeline(res.session, res.tasks)
        assert timeline.busy_core_seconds(RUNNING) > 0


class TestDDMDTuningIntegration:
    def test_six_phases_complete(self):
        res = run_ddmd_experiment(tuning_experiment(), seed=7)
        pipeline = res.payload["pipelines"][0]
        assert len(pipeline.stages) == 24  # 6 phases x 4 stages
        assert pipeline.succeeded

    def test_fig9_low_cpu_utilization(self):
        res = run_ddmd_experiment(tuning_experiment(), seed=7)
        series = cpu_utilization_series(res.deployment.store(HARDWARE))
        means = {
            host: np.mean([p.cpu_utilization for p in pts])
            for host, pts in series.items()
        }
        assert means
        assert all(m < 0.30 for m in means.values())


class TestScalingIntegration:
    def test_small_scaling_run_all_modes(self):
        """4-pipeline miniature of Scaling B: all modes complete."""
        results = {}
        for mode, freq in (
            ("none", False),
            ("shared", False),
            ("exclusive", True),
        ):
            exp = SCALING_B(4, mode, frequent=freq).with_updates(
                soma_nodes=1 if mode != "none" else 0,
                soma_ranks_per_namespace=2,
            )
            res = run_ddmd_experiment(exp, seed=9)
            durations = pipeline_durations(res)
            assert len(durations) == 4
            results[mode] = np.mean(durations)
        # All durations in a sane band (same workload).
        values = list(results.values())
        assert max(values) / min(values) < 1.5

    def test_monitoring_data_scales_with_nodes(self):
        exp = SCALING_B(4, "exclusive").with_updates(
            soma_nodes=1, soma_ranks_per_namespace=2
        )
        res = run_ddmd_experiment(exp, seed=9)
        hw = res.deployment.store(HARDWARE)
        # One series per app node (4) at least.
        assert len(hw.sources()) >= 4
