"""Differential battery: heap vs calendar on full experiment runs.

The strongest equivalence evidence the repo can produce: the fig. 4
(OpenFOAM tuning) and Table-2 DDMD tuning scenarios, run end to end
under each event-queue backend with the same seed, must emit
byte-identical trace digests and identical kernel counters — down to
the tombstone-skip count.  A sweep-cell run closes the loop at the
payload level, since cell payloads are what the cached sweep engine
digests.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments import (
    TUNING,
    run_ddmd_experiment,
    run_openfoam_experiment,
    tuning_experiment,
)
from repro.experiments.harness import run_cell
from repro.sim import set_default_event_queue

from tests.faults.harness import trace_signature

SEEDS = (3, 17, 33)
BACKENDS = ("heap", "calendar")


@pytest.fixture
def backend_default():
    """Restore the process-wide backend default after each test."""
    previous = set_default_event_queue(None)
    yield set_default_event_queue
    set_default_event_queue(previous)


def trace_digest(result) -> str:
    signature = trace_signature(result.session)
    return hashlib.sha256(signature.encode()).hexdigest()


def kernel_counters(result) -> dict:
    return dict(result.session.env.kernel_counters())


def _per_backend(backend_default, run):
    out = {}
    for backend in BACKENDS:
        backend_default(backend)
        result = run()
        assert result.session.env.event_queue_backend == backend
        out[backend] = (trace_digest(result), kernel_counters(result))
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_openfoam_digests_identical_across_backends(backend_default, seed):
    runs = _per_backend(
        backend_default, lambda: run_openfoam_experiment(TUNING, seed=seed)
    )
    digest_heap, counters_heap = runs["heap"]
    digest_cal, counters_cal = runs["calendar"]
    assert digest_heap == digest_cal, f"trace digest diverged for seed {seed}"
    assert counters_heap == counters_cal, (
        f"kernel counters diverged for seed {seed}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_ddmd_digests_identical_across_backends(backend_default, seed):
    runs = _per_backend(
        backend_default,
        lambda: run_ddmd_experiment(tuning_experiment(), seed=seed),
    )
    digest_heap, counters_heap = runs["heap"]
    digest_cal, counters_cal = runs["calendar"]
    assert digest_heap == digest_cal, f"trace digest diverged for seed {seed}"
    assert counters_heap == counters_cal, (
        f"kernel counters diverged for seed {seed}"
    )


def test_sweep_cell_payload_parity(backend_default):
    # The sweep engine caches cells by payload digest; a backend must
    # never change what a cell computes.
    payloads = {}
    for backend in BACKENDS:
        backend_default(backend)
        payloads[backend] = run_cell(
            "openfoam", {"experiment": "tuning"}, seed=SEEDS[0]
        )
    assert payloads["heap"] == payloads["calendar"]
