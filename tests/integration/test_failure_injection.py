"""Failure injection: task failures, service death, monitor resilience."""


from repro.platform import summit_like
from repro.rp import (
    Client,
    FailingModel,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.soma import HARDWARE, SomaConfig, WORKFLOW, deploy_soma


def boot(nodes=2, seed=1, soma=None):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env
    box = {}

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        box["pilot"] = pilot
        if soma is not None:
            box["deployment"] = yield from deploy_soma(client, pilot, soma)

    env.run(env.process(main(env)))
    return session, client, box


class TestTaskFailures:
    def test_failed_task_does_not_poison_others(self):
        session, client, _ = boot()
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(name="bad", model=FailingModel(1.0)),
                    TaskDescription(
                        name="good", model=FixedDurationModel(2.0)
                    ),
                ]
            )
            yield from client.wait_tasks(tasks)
            return {t.description.name: t for t in tasks}

        tasks = env.run(env.process(main(env)))
        assert tasks["bad"].state == TaskState.FAILED
        assert tasks["good"].state == TaskState.DONE
        client.close()

    def test_failed_task_releases_resources(self):
        session, client, box = boot()
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(
                        name="bad", model=FailingModel(1.0), ranks=40
                    )
                ]
            )
            yield from client.wait_tasks(tasks)

        env.run(env.process(main(env)))
        for node in box["pilot"].compute_nodes:
            assert node.free_cores == node.total_cores
        client.close()

    def test_model_exception_becomes_failed_not_crash(self):
        from repro.rp.model import TaskModel

        class BuggyModel(TaskModel):
            def execute(self, ctx):
                yield ctx.env.timeout(1.0)
                raise RuntimeError("model bug")

        session, client, _ = boot()
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(name="buggy", model=BuggyModel())]
            )
            yield from client.wait_tasks(tasks)
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.FAILED
        assert isinstance(task.exception, RuntimeError)
        client.close()

    def test_failure_visible_in_monitoring(self):
        soma = SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("rp",),
            monitoring_frequency=10.0,
        )
        session, client, box = boot(soma=soma)
        env = session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(name="bad", model=FailingModel(2.0))]
            )
            yield from client.wait_tasks(tasks)
            yield env.timeout(15)

        env.run(env.process(main(env)))
        from repro.soma import workflow_summary_series

        summaries = workflow_summary_series(
            box["deployment"].store(WORKFLOW)
        )
        assert summaries[-1]["failed"] >= 1
        client.close()


class TestServiceDeath:
    def test_monitors_survive_service_shutdown(self):
        """If the service dies mid-run, clients surface failures but
        the workflow itself keeps going."""
        soma = SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("proc",),
            monitoring_frequency=5.0,
        )
        session, client, box = boot(soma=soma)
        env = session.env
        deployment = box["deployment"]

        def main(env):
            # Kill the service servers mid-run.
            yield env.timeout(12)
            for server in deployment.service_model.servers.values():
                server.shutdown()
            tasks = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(20.0))]
            )
            yield from client.wait_tasks(tasks)
            yield env.timeout(12)
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.DONE
        models = deployment.hw_monitor_models()
        assert any(m.client.publish_failures > 0 for m in models)
        client.close()
