"""Fig. 11 at Summit scale: the event kernel under a full machine.

The paper's Scaling B runs top out at 512 nodes; this test pushes the
same monitored bag-of-tasks shape to a four-digit node count and a
six-digit task count — the population regime the calendar queue was
built for — and pins the kernel-level evidence:

* the run finishes under a wall-clock ceiling (the event kernel, not
  the workload, is the scaling risk),
* the pending-set peak actually reached event-kernel scale,
* the calendar backend absorbed that population in its bucket layout
  (occupancy/advance counters are live and sane).

The default lane runs a reduced configuration to keep the suite
responsive; set ``REPRO_FULL_SCALE=1`` for the paper-scale 1024-node,
100k-task run (a few minutes).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import run_workflow
from repro.soma import HARDWARE, WORKFLOW, SomaConfig
from repro.workloads import uniform_bag

pytestmark = pytest.mark.slow

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "0") == "1"

if FULL_SCALE:
    NODES = 1024
    TASKS = 100_000
    WALL_CEILING = 900.0  # "completing in minutes"
    PEAK_FLOOR = 40_000
else:
    NODES = 128
    TASKS = 10_000
    WALL_CEILING = 120.0
    PEAK_FLOOR = 5_000

MONITORING = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc",),
    monitoring_frequency=60.0,
)


def test_fig11_scale_event_kernel():
    def workload(client, deployment):
        tasks = client.submit_tasks(uniform_bag(TASKS, duration=180.0))
        yield from client.wait_tasks(tasks)
        return {"done": len(tasks)}

    start = time.perf_counter()
    result = run_workflow(
        workload,
        nodes=NODES,
        soma_config=MONITORING,
        seed=11,
        trace=False,
    )
    wall = time.perf_counter() - start

    assert result.payload["done"] == TASKS
    assert all(
        t.state == "DONE" for t in result.application_tasks
    ), "not every task completed"

    counters = result.session.env.kernel_counters()
    stats = result.session.env.queue_stats()

    # The run must actually have exercised event-kernel scale...
    assert counters["events_executed"] > TASKS * 10
    assert counters["peak_heap_size"] >= PEAK_FLOOR, counters
    # ...through the calendar layout, not a degenerate single bucket.
    assert stats["backend"] == "calendar"
    assert stats["advances"] > 0
    assert 0 < stats["max_bucket_occupancy"] <= counters["peak_heap_size"]
    # Dead retry/timeout clocks must be reaped lazily, not executed.
    assert counters["tombstones_skipped"] > 0

    assert wall < WALL_CEILING, (
        f"fig11-scale run took {wall:.1f}s "
        f"(ceiling {WALL_CEILING}s at {NODES} nodes / {TASKS} tasks)"
    )
