"""The monitoring-overhead mechanisms, observed in isolation.

These tests pin down the causal claims DESIGN.md makes for Fig 11:
frequent monitoring stalls RP's state machinery through the profile
I/O lock, and monitoring traffic/compute is visible but small.
"""


from repro.experiments import run_workflow
from repro.rp import FixedDurationModel, RPConfig, TaskDescription
from repro.soma import SomaConfig, WORKFLOW, HARDWARE


def run_bag(frequency, n_tasks=40, read_cost=2e-3, seed=3):
    """A serial-ish bag with aggressive profile-read cost, so the lock
    contention mechanism is visible at test scale."""

    def workload(client, deployment):
        tasks = client.submit_tasks(
            [
                TaskDescription(
                    name=f"t{i}",
                    model=FixedDurationModel(4.0),
                    ranks=40,
                )
                for i in range(n_tasks)
            ]
        )
        yield from client.wait_tasks(tasks)
        return tasks

    soma = (
        None
        if frequency is None
        else SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=("proc", "rp"),
            monitoring_frequency=frequency,
        )
    )
    return run_workflow(
        workload,
        nodes=1,
        agent_nodes=1,
        soma_config=soma,
        rp_config=RPConfig(
            profile_read_per_record=read_cost, overhead_jitter=0.0
        ),
        seed=seed,
    )


def test_frequent_monitoring_extends_makespan():
    baseline = run_bag(frequency=None).makespan
    relaxed = run_bag(frequency=60.0).makespan
    frequent = run_bag(frequency=2.0).makespan
    # Monitoring costs something, and more frequent costs more.
    assert relaxed >= baseline * 0.999
    assert frequent > relaxed


def test_monitoring_traffic_crosses_the_fabric():
    result = run_bag(frequency=10.0)
    stats = result.session.cluster.network.stats
    publish_tags = [t for t in stats.by_tag if t.startswith("rpc:publish")]
    assert publish_tags
    count, total_bytes = stats.by_tag[publish_tags[0]]
    assert count > 5
    assert total_bytes > 0


def test_service_rank_cpu_visible_on_host_node():
    result = run_bag(frequency=5.0)
    # The SOMA service lives on the agent node here; its RPC service
    # time is charged as CPU there.
    agent_node = result.client.pilot.agent_node
    assert agent_node.busy_cores.integral > 0


def test_profile_reads_counted():
    result = run_bag(frequency=5.0)
    assert result.session.profiles.reads > 3
    assert result.session.profiles.writes > 0


def test_monitor_lock_stall_measured_directly():
    """The updater's profile writes queue behind monitor reads."""
    from repro.rp import ProfileRecord, ProfileStore
    from repro.sim import Environment

    env = Environment()
    store = ProfileStore(
        env, write_time=0.0, read_time_base=1.0, read_time_per_record=0.0
    )
    store.append(ProfileRecord(0.0, "task.000000", "state", "NEW"))
    write_done = {}

    def reader(env):
        yield from store.read_since(0)

    def writer(env):
        yield env.timeout(0.2)
        yield from store.write_locked(
            ProfileRecord(0.2, "task.000001", "state", "NEW")
        )
        write_done["t"] = env.now

    env.process(reader(env))
    env.process(writer(env))
    env.run()
    assert write_done["t"] >= 1.0  # stalled behind the 1 s read hold
