"""Seed-sweep determinism regression: the fig. 4 scenario, run twice
under several seeds, must produce bit-identical event traces.

This is the guarantee simlint and the kernel sanitizers exist to
protect: if any wall-clock read, unseeded RNG, or order-sensitive
iteration sneaks back into the stack, some seed's digest will drift
between the two runs and this test pins the regression to a seed.
"""

from __future__ import annotations

import hashlib

from repro.experiments import TUNING, run_openfoam_experiment

from tests.faults.harness import trace_signature

SEEDS = (3, 17, 33)


def trace_digest(result) -> str:
    """sha256 over the canonicalized full event-trace stream."""
    signature = trace_signature(result.session)
    return hashlib.sha256(signature.encode()).hexdigest()


def kernel_counters(result) -> dict:
    return dict(result.session.env.kernel_counters())


def _sweep() -> dict[int, tuple[str, dict]]:
    out = {}
    for seed in SEEDS:
        result = run_openfoam_experiment(TUNING, seed=seed)
        out[seed] = (trace_digest(result), kernel_counters(result))
    return out


def test_seed_sweep_digests_are_reproducible():
    first = _sweep()
    second = _sweep()
    for seed in SEEDS:
        digest_a, counters_a = first[seed]
        digest_b, counters_b = second[seed]
        assert digest_a == digest_b, f"trace digest drifted for seed {seed}"
        assert counters_a == counters_b, (
            f"kernel counters drifted for seed {seed}"
        )


def test_seed_sweep_digests_are_distinct_across_seeds():
    digests = {seed: trace_digest(run_openfoam_experiment(TUNING, seed=seed))
               for seed in SEEDS}
    assert len(set(digests.values())) == len(SEEDS), digests
