"""Sharded-vs-single SOMA differential (ISSUE 9 tentpole proof).

The facility service only counts as landed if sharding is *behaviorally
invisible* to a single tenant: for the same seed, the same workload
monitored through a 2-shard deployment must yield byte-identical
namespace stores (times, sources, byte counts, canonical payload JSON)
and byte-identical trace streams, compared to the paper's
single-instance baseline.

The pairing that makes this an apples-to-apples comparison:

* baseline ``ranks_per_namespace=2, shards=0`` vs sharded
  ``ranks_per_namespace=1, shards=2`` — the SOMA service *task* has
  the same total rank count either way, so its launch cost
  (``launch_per_rank_cost × ranks``) and placement are identical and
  the deployment timeline does not shift;
* admission control disabled (``admission_rate=None``), per the ISSUE:
  the differential pins the routing/serving path, not backpressure;
* the only trace records excluded are category ``soma.instance`` —
  the sharded bring-up's own placement announcements, which have no
  single-instance counterpart by construction.  Everything else,
  including every publish/gap/task record, must match exactly.

Runs the real OpenFOAM and DDMD generators (reduced sizes) across
seeds 3/17/33.
"""

from dataclasses import replace

import pytest

from repro.experiments.ddmd_exps import run_ddmd_experiment, tuning_experiment
from repro.experiments.openfoam_exps import (
    OpenFOAMExperiment,
    run_openfoam_experiment,
)
from repro.soma.service import ShardedSomaServiceModel

SEEDS = (3, 17, 33)

OPENFOAM_BASE = OpenFOAMExperiment(
    name="differential",
    instances_per_config=1,
    compute_nodes=2,
    rank_configs=(20, 41),
    soma_ranks_per_namespace=2,
)
OPENFOAM_SHARDED = replace(
    OPENFOAM_BASE, soma_ranks_per_namespace=1, soma_shards=2
)

DDMD_BASE = tuning_experiment().with_updates(
    name="differential", phases=2, soma_ranks_per_namespace=2
)
DDMD_SHARDED = DDMD_BASE.with_updates(
    soma_ranks_per_namespace=1, soma_shards=2
)


def store_signature(result) -> str:
    """Canonical bytes of every namespace's full record stream."""
    lines = []
    for namespace in result.deployment.config.namespaces:
        store = result.deployment.store(namespace)
        for rec in store.records():
            lines.append(
                f"{namespace}|{rec.time!r}|{rec.source}"
                f"|{rec.nbytes!r}|{rec.data.to_json()}"
            )
    return "\n".join(lines)


def trace_signature(session) -> str:
    """Canonical bytes of the trace stream, minus shard bring-up."""
    return "\n".join(
        f"{rec.time!r}|{rec.category}|{rec.name}|{sorted(rec.data.items())!r}"
        for rec in session.tracer.records
        if rec.category != "soma.instance"
    )


def assert_differential(baseline, sharded) -> None:
    model = sharded.deployment.service_model
    assert isinstance(model, ShardedSomaServiceModel)
    # Non-vacuous: the default tenant's namespaces really spread over
    # both instances, and every serving store is instance-qualified.
    owners = {
        model.ring.owner(f"default/{ns}")
        for ns in sharded.deployment.config.namespaces
    }
    assert len(owners) == 2
    stats = model.queue_stats()
    assert all("." in name for name in stats)
    assert sum(s["calls"] for s in stats.values()) > 0
    # The headline: byte-identical stores and traces.
    assert store_signature(baseline) == store_signature(sharded)
    assert trace_signature(baseline.session) == trace_signature(
        sharded.session
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_openfoam_sharded_matches_single(seed):
    baseline = run_openfoam_experiment(OPENFOAM_BASE, seed=seed)
    sharded = run_openfoam_experiment(OPENFOAM_SHARDED, seed=seed)
    assert_differential(baseline, sharded)
    assert baseline.makespan == sharded.makespan


@pytest.mark.parametrize("seed", SEEDS)
def test_ddmd_sharded_matches_single(seed):
    baseline = run_ddmd_experiment(DDMD_BASE, seed=seed)
    sharded = run_ddmd_experiment(DDMD_SHARDED, seed=seed)
    assert_differential(baseline, sharded)
    assert baseline.makespan == sharded.makespan
