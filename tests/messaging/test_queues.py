"""ZeroMQ-style component queues."""

import pytest

from repro.messaging import ComponentQueue, QueueRegistry


def test_put_get_round_trip(env):
    q = ComponentQueue(env, "pipe", latency=0.0)

    def consumer(env):
        msg = yield from q.get()
        return (msg.topic, msg.body)

    q.put("topic", {"k": 1}, sender="tester")
    assert env.run(env.process(consumer(env))) == ("topic", {"k": 1})


def test_latency_delays_delivery(env):
    q = ComponentQueue(env, "pipe", latency=0.5)

    def consumer(env):
        msg = yield from q.get()
        return env.now

    q.put("t", None)
    assert env.run(env.process(consumer(env))) == pytest.approx(0.5)


def test_message_metadata(env):
    q = ComponentQueue(env, "pipe", latency=0.0)
    q.put("a", 1, sender="s1")

    def consumer(env):
        msg = yield from q.get()
        return msg

    msg = env.run(env.process(consumer(env)))
    assert msg.sender == "s1"
    assert msg.sent_at == 0.0


def test_counters(env):
    q = ComponentQueue(env, "pipe", latency=0.0)
    q.put("a", 1)
    q.put("b", 2)

    def consumer(env):
        yield from q.get()

    env.run(env.process(consumer(env)))
    assert q.enqueued == 2
    assert q.dequeued == 1
    assert len(q) == 1


def test_registry_creates_and_caches(env):
    reg = QueueRegistry(env)
    q1 = reg.queue("alpha")
    q2 = reg.queue("alpha")
    assert q1 is q2
    reg.queue("beta")
    assert sorted(reg.names()) == ["alpha", "beta"]


def test_fifo_order_preserved(env):
    q = ComponentQueue(env, "pipe", latency=0.01)
    for i in range(5):
        q.put("t", i)

    def consumer(env):
        out = []
        for _ in range(5):
            msg = yield from q.get()
            out.append(msg.body)
        return out

    assert env.run(env.process(consumer(env))) == [0, 1, 2, 3, 4]
