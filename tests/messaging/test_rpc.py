"""Mochi-style RPC: queueing, service time, discovery, failures."""

import pytest

from repro.messaging import RPCClient, RPCError, RPCRegistry, RPCServer
from repro.platform import Cluster, summit_like
from repro.sim import Environment


@pytest.fixture
def cluster(env):
    return Cluster(env, summit_like(2))


def make_server(env, cluster, ranks=1, node=None, **kwargs):
    server = RPCServer(
        env, cluster.network, node, name="svc", ranks=ranks, **kwargs
    )
    server.register("echo", lambda req: req.body)
    server.register("boom", lambda req: 1 / 0)
    return server


def call(env, client, server, method, body=None, nbytes=100.0, box=None, key=None):
    response = yield from client.call(server, method, body=body, payload_bytes=nbytes)
    if box is not None:
        box[key] = (env.now, response)
    return response


class TestRPCBasics:
    def test_echo_round_trip(self, env, cluster):
        server = make_server(env, cluster)
        client = RPCClient(env, cluster.network, "c1")
        p = env.process(call(env, client, server, "echo", body={"x": 1}))
        response = env.run(p)
        assert response.ok
        assert response.body == {"x": 1}
        assert client.calls == 1

    def test_unknown_method_raises_client_side(self, env, cluster):
        server = make_server(env, cluster)
        client = RPCClient(env, cluster.network, "c1")

        def proc(env):
            try:
                yield from client.call(server, "nope")
            except RPCError:
                return "raised"

        assert env.run(env.process(proc(env))) == "raised"
        assert server.stats.errors == 1

    def test_handler_exception_returned_not_raised(self, env, cluster):
        server = make_server(env, cluster)
        client = RPCClient(env, cluster.network, "c1")
        response = env.run(env.process(call(env, client, server, "boom")))
        assert not response.ok
        assert isinstance(response.body, ZeroDivisionError)

    def test_dead_server_raises(self, env, cluster):
        server = make_server(env, cluster)
        server.shutdown()
        client = RPCClient(env, cluster.network, "c1")

        def proc(env):
            with pytest.raises(RPCError):
                yield from client.call(server, "echo")
            return True

        assert env.run(env.process(proc(env)))

    def test_rtt_positive_and_tracked(self, env, cluster):
        server = make_server(env, cluster)
        client = RPCClient(env, cluster.network, "c1")
        env.run(env.process(call(env, client, server, "echo")))
        assert client.mean_rtt > 0
        assert env.now > 0

    def test_payload_size_increases_service_time(self, env, cluster):
        big_box, small_box = {}, {}
        server = make_server(
            env, cluster, per_byte_service_time=1e-5
        )
        client = RPCClient(env, cluster.network, "c1")
        env.run(env.process(
            call(env, client, server, "echo", nbytes=100.0, box=small_box, key="t")
        ))
        small_t = small_box["t"][0]
        env2 = Environment()
        cluster2 = Cluster(env2, summit_like(2))
        server2 = make_server(env2, cluster2, per_byte_service_time=1e-5)
        client2 = RPCClient(env2, cluster2.network, "c1")
        env2.run(env2.process(
            call(env2, client2, server2, "echo", nbytes=100000.0, box=big_box, key="t")
        ))
        assert big_box["t"][0] > small_t


class TestRPCQueueing:
    def test_single_rank_serializes(self, env, cluster):
        server = make_server(env, cluster, ranks=1, base_service_time=1.0)
        box = {}
        for i in range(3):
            client = RPCClient(env, cluster.network, f"c{i}")
            env.process(call(env, client, server, "echo", box=box, key=i))
        env.run()
        finish_times = sorted(t for t, _ in box.values())
        assert finish_times[1] - finish_times[0] == pytest.approx(1.0, rel=0.05)
        assert server.stats.mean_queue_time > 0

    def test_more_ranks_increase_concurrency(self, env, cluster):
        server = make_server(env, cluster, ranks=3, base_service_time=1.0)
        box = {}
        for i in range(3):
            client = RPCClient(env, cluster.network, f"c{i}")
            env.process(call(env, client, server, "echo", box=box, key=i))
        env.run()
        finish_times = [t for t, _ in box.values()]
        assert max(finish_times) - min(finish_times) < 0.5

    def test_server_node_charged_cpu(self, env, cluster):
        node = cluster.nodes[0]
        server = make_server(env, cluster, node=node, base_service_time=0.5)
        client = RPCClient(env, cluster.network, "c1")
        env.run(env.process(call(env, client, server, "echo")))
        assert node.busy_cores.integral > 0

    def test_invalid_rank_count(self, env, cluster):
        with pytest.raises(ValueError):
            RPCServer(env, cluster.network, None, "bad", ranks=0)


class TestRegistry:
    def test_lookup_blocks_until_publish(self, env, cluster):
        registry = RPCRegistry(env)
        box = {}

        def waiter(env):
            server = yield from registry.lookup("svc")
            box["found_at"] = env.now
            return server.name

        def publisher(env):
            yield env.timeout(5)
            registry.publish(make_server(env, cluster))

        p = env.process(waiter(env))
        env.process(publisher(env))
        assert env.run(p) == "svc"
        assert box["found_at"] == pytest.approx(5.0)

    def test_lookup_immediate_when_registered(self, env, cluster):
        registry = RPCRegistry(env)
        server = make_server(env, cluster)
        registry.publish(server)

        def waiter(env):
            found = yield from registry.lookup("svc")
            return found is server

        assert env.run(env.process(waiter(env)))

    def test_try_lookup(self, env, cluster):
        registry = RPCRegistry(env)
        assert registry.try_lookup("ghost") is None
        server = make_server(env, cluster)
        registry.publish(server)
        assert registry.try_lookup("svc") is server
        assert registry.names() == ["svc"]
