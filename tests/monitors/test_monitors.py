"""The three monitoring clients over the full stack."""


from repro.platform import summit_like
from repro.rp import (
    Client,
    ComputeModel,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.soma import (
    HARDWARE,
    PERFORMANCE,
    SomaConfig,
    WORKFLOW,
    cpu_utilization_series,
    deploy_soma,
    rank_region_breakdown,
    task_state_observations,
    workflow_summary_series,
)


def run_monitored(
    descriptions_fn,
    monitors=("proc", "rp"),
    namespaces=(WORKFLOW, HARDWARE, PERFORMANCE),
    frequency=20.0,
    drain=25.0,
    nodes=2,
    seed=3,
):
    session = Session(cluster_spec=summit_like(nodes + 2), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        deployment = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(
                namespaces=namespaces,
                monitors=monitors,
                monitoring_frequency=frequency,
            ),
        )
        tasks = client.submit_tasks(descriptions_fn(deployment))
        yield from client.wait_tasks(tasks)
        yield env.timeout(drain)
        return pilot, deployment, tasks

    pilot, deployment, tasks = env.run(env.process(main(env)))
    client.close()
    return session, client, pilot, deployment, tasks


class TestHardwareMonitor:
    def test_per_node_series_collected(self):
        _, _, pilot, deployment, _ = run_monitored(
            lambda d: [TaskDescription(model=FixedDurationModel(60.0), ranks=20)]
        )
        series = cpu_utilization_series(deployment.store(HARDWARE))
        # One series per compute node.
        assert set(series) == {n.name for n in pilot.compute_nodes}
        for points in series.values():
            assert len(points) >= 2
            assert all(0.0 <= p.cpu_utilization <= 1.0 for p in points)

    def test_utilization_reflects_load(self):
        _, _, _, deployment, tasks = run_monitored(
            lambda d: [
                TaskDescription(
                    model=ComputeModel(120.0, mem_intensity=0.0), ranks=40
                )
            ]
        )
        series = cpu_utilization_series(deployment.store(HARDWARE))
        busy_node = tasks[0].nodelist[0]
        peak = max(p.cpu_utilization for p in series[busy_node])
        assert peak > 0.8

    def test_monitor_occupies_reserved_core(self):
        _, _, pilot, _, _ = run_monitored(
            lambda d: [TaskDescription(model=FixedDurationModel(30.0))]
        )
        # While monitors are resident, each compute node keeps a core
        # allocated... after close() they are released; check traces
        # instead: allocations tagged with monitor names exist.

    def test_monitor_models_record_series(self):
        _, _, _, deployment, _ = run_monitored(
            lambda d: [TaskDescription(model=FixedDurationModel(60.0))]
        )
        models = deployment.hw_monitor_models()
        assert models
        for model in models:
            assert model.samples >= 2
            assert len(model.utilization_series) == model.samples


class TestRPMonitor:
    def test_workflow_summaries_published(self):
        _, _, _, deployment, _ = run_monitored(
            lambda d: [
                TaskDescription(model=FixedDurationModel(45.0))
                for _ in range(3)
            ]
        )
        summaries = workflow_summary_series(deployment.store(WORKFLOW))
        assert summaries
        last = summaries[-1]
        assert last["done"] >= 3

    def test_task_start_observations(self):
        _, _, _, deployment, tasks = run_monitored(
            lambda d: [
                TaskDescription(model=FixedDurationModel(45.0))
                for _ in range(2)
            ]
        )
        observations = task_state_observations(
            deployment.store(WORKFLOW), event="AGENT_EXECUTING"
        )
        observed_uids = {uid for _, uid in observations}
        assert {t.uid for t in tasks} <= observed_uids

    def test_summary_counts_match_reality(self):
        from repro.monitors import summarize_profile

        session, client, _, _, tasks = run_monitored(
            lambda d: [
                TaskDescription(model=FixedDurationModel(30.0))
                for _ in range(4)
            ]
        )
        summary = summarize_profile(
            session.profiles.snapshot(), session.env.now
        )
        assert summary["done"] == 4
        assert summary["failed"] == 0


class TestTAUPlugin:
    def test_profiles_published_with_tags(self):
        from repro.workloads import openfoam_task_description

        def descriptions(deployment):
            td = openfoam_task_description(20)
            return [deployment.wrap_with_tau(td)]

        _, _, _, deployment, tasks = run_monitored(
            descriptions, frequency=30.0
        )
        store = deployment.store(PERFORMANCE)
        assert len(store) == 1
        breakdown = rank_region_breakdown(store, tasks[0].uid)
        assert len(breakdown) == 20
        # MPI regions present for every rank.
        for regions in breakdown.values():
            assert "MPI_Recv" in regions
            assert "MPI_Waitall" in regions

    def test_sampling_overhead_applied(self):

        session = Session(cluster_spec=summit_like(3), seed=1)
        client = Client(session)
        env = session.env

        def main(env):
            pilot = yield from client.submit_pilot(PilotDescription(nodes=1))
            deployment = yield from deploy_soma(
                client,
                pilot,
                SomaConfig(namespaces=(PERFORMANCE,), monitors=()),
            )
            bare = TaskDescription(
                name="bare", model=FixedDurationModel(100.0)
            )
            wrapped = deployment.wrap_with_tau(
                TaskDescription(name="tau", model=FixedDurationModel(100.0))
            )
            tasks = client.submit_tasks([bare, wrapped])
            yield from client.wait_tasks(tasks)
            return {t.description.name: t for t in tasks}

        tasks = env.run(env.process(main(env)))
        client.close()
        assert (
            tasks["tau"].execution_time > tasks["bare"].execution_time * 1.005
        )
