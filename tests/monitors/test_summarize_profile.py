"""Unit tests for the RP monitor's profile summarizer."""

import pytest

from repro.monitors import summarize_profile
from repro.rp import ProfileRecord, TaskState


def rec(t, uid, state):
    return ProfileRecord(time=t, entity=uid, event="state", state=state)


def test_empty_profile():
    summary = summarize_profile([], now=100.0)
    assert summary["tasks_seen"] == 0
    assert summary["done"] == 0
    assert summary["state_counts"] == {}


def test_counts_by_last_state():
    records = [
        rec(0.0, "task.000000", TaskState.NEW),
        rec(1.0, "task.000000", TaskState.AGENT_EXECUTING),
        rec(0.0, "task.000001", TaskState.NEW),
        rec(5.0, "task.000001", TaskState.DONE),
        rec(0.0, "task.000002", TaskState.NEW),
        rec(4.0, "task.000002", TaskState.FAILED),
    ]
    summary = summarize_profile(records, now=10.0)
    assert summary["tasks_seen"] == 3
    assert summary["running"] == 1
    assert summary["done"] == 1
    assert summary["failed"] == 1
    assert summary["pending"] == 0


def test_time_in_state_accumulates():
    records = [
        rec(0.0, "task.000000", TaskState.NEW),
        rec(4.0, "task.000000", TaskState.AGENT_EXECUTING),
        rec(10.0, "task.000000", TaskState.DONE),
    ]
    summary = summarize_profile(records, now=20.0)
    assert summary["time_in_state"][TaskState.NEW] == pytest.approx(4.0)
    assert summary["time_in_state"][TaskState.AGENT_EXECUTING] == (
        pytest.approx(6.0)
    )
    # DONE is final: no open interval accrues to 'now'.
    assert TaskState.DONE not in summary["time_in_state"]


def test_open_interval_accrues_to_now():
    records = [rec(2.0, "task.000000", TaskState.AGENT_SCHEDULING)]
    summary = summarize_profile(records, now=12.0)
    assert summary["time_in_state"][TaskState.AGENT_SCHEDULING] == (
        pytest.approx(10.0)
    )
    assert summary["pending"] == 1


def test_non_task_entities_ignored():
    records = [
        ProfileRecord(0.0, "pilot.0000", "state", "PMGR_ACTIVE"),
        rec(0.0, "task.000000", TaskState.NEW),
    ]
    summary = summarize_profile(records, now=5.0)
    assert summary["tasks_seen"] == 1


def test_sub_state_events_do_not_change_state():
    records = [
        rec(0.0, "task.000000", TaskState.AGENT_EXECUTING),
        ProfileRecord(
            1.0, "task.000000", "rank_start", TaskState.AGENT_EXECUTING
        ),
    ]
    summary = summarize_profile(records, now=5.0)
    assert summary["running"] == 1
    assert summary["state_counts"] == {TaskState.AGENT_EXECUTING: 1}
