"""Smoke test for the event-queue perf suite (quick mode).

Runs the backend microbenchmarks once at CI scale and checks the
contract the perf-regression harness depends on: the JSON schema is
stable, the merge-into-existing-results path works, and the calendar
backend is never slower than the heap where it matters — the
10^5-pending churn level and the fig. 11 cascade — with conservative
floors so shared CI runners do not flake (the full-scale bench
demonstrates the >= 3x requirement).
"""

import json
import os
import sys

BENCH_DIR = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks", "perf"
    )
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_event_queue  # noqa: E402
from perf_common import write_results  # noqa: E402


def test_quick_suite_schema_and_speedup(tmp_path):
    results = bench_event_queue.run_all(quick=True)

    assert results["schema"] == 1
    assert results["quick"] is True
    benches = results["benches"]
    assert set(benches) == {
        "event_queue_churn",
        "event_queue_cancel",
        "fig11_scale_kernel",
    }

    churn = benches["event_queue_churn"]
    assert set(churn["levels"]) == {"1000", "10000", "100000"}
    for level in churn["levels"].values():
        for backend in ("heap", "calendar"):
            assert level[backend]["schedule_seconds"] > 0
            assert level[backend]["pop_churn_seconds"] > 0
    # The satellite requirement: at 10^5 pending the calendar must
    # never be slower than the heap.  Full-scale runs measure 1.6-1.9x;
    # the floor leaves headroom for noisy shared runners.
    assert churn["levels"]["100000"]["speedup"] >= 1.0

    cancel = benches["event_queue_cancel"]
    assert cancel["heap"]["seconds"] > 0
    assert cancel["calendar"]["seconds"] > 0
    # cancel_churn asserts counter equality internally; spot-check the
    # tombstone traffic actually happened.
    assert cancel["counters"]["tombstones_skipped"] > 0

    fig11 = benches["fig11_scale_kernel"]
    assert fig11["concurrent"] > 10_000
    # Quick scale measures ~2.9x cascade; full Summit scale ~4x.
    assert fig11["speedup"] >= 1.5
    assert fig11["replay_speedup"] > 0

    out = tmp_path / "BENCH_perf.json"
    write_results(str(out), results)
    round_tripped = json.loads(out.read_text())
    assert round_tripped["benches"]["fig11_scale_kernel"]["nodes"] == 512


def test_main_merges_into_existing_results(tmp_path, monkeypatch):
    # Merging into an existing suite file (e.g. bench_kernel output)
    # must preserve foreign benches.  Stub the suite so the merge path
    # is exercised without re-running the benchmarks.
    backend_leg = {
        "seconds": 1.0,
        "schedule_seconds": 0.5,
        "pop_churn_seconds": 0.5,
        "cascade_seconds": 1.0,
        "replay_seconds": 1.0,
    }
    stub = {
        "schema": 1,
        "quick": True,
        "python": "0",
        "benches": {
            "event_queue_churn": {
                "ops": 1,
                "levels": {
                    "1000": {
                        "heap": backend_leg,
                        "calendar": backend_leg,
                        "speedup": 1.0,
                    }
                },
            },
            "event_queue_cancel": {
                "timeouts": 1,
                "heap": backend_leg,
                "calendar": backend_leg,
                "speedup": 1.0,
                "counters": {},
            },
            "fig11_scale_kernel": {
                "nodes": 512,
                "tasks": 1,
                "concurrent": 1,
                "heap": backend_leg,
                "calendar": backend_leg,
                "speedup": 1.0,
                "replay_speedup": 1.0,
            },
        },
    }
    monkeypatch.setattr(bench_event_queue, "run_all", lambda quick: stub)
    out = tmp_path / "merged.json"
    out.write_text(
        json.dumps({"schema": 1, "benches": {"store_churn": {"speedup": 5.0}}})
    )
    rc = bench_event_queue.main(["--quick", "--out", str(out)])
    assert rc == 0
    merged = json.loads(out.read_text())
    assert "store_churn" in merged["benches"]
    assert "fig11_scale_kernel" in merged["benches"]
    assert merged["benches"]["fig11_scale_kernel"]["nodes"] == 512
