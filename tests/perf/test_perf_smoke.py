"""Smoke test for the kernel perf suite (quick mode).

Runs the microbenchmarks once at CI scale and checks the contract the
perf-regression harness depends on: the JSON schema is stable, the
kernel counters are populated, and the store-churn speedup over the
in-tree legacy replica is present with a wide margin (the full-scale
bench demonstrates the 5x+ requirement; at smoke scale we assert a
conservative floor so shared CI runners do not flake).
"""

import json
import os
import sys

BENCH_DIR = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks", "perf"
    )
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_kernel  # noqa: E402
from perf_common import write_results  # noqa: E402


def test_quick_suite_schema_and_speedup(tmp_path):
    results = bench_kernel.run_all(quick=True)

    assert results["schema"] == 1
    assert results["quick"] is True
    benches = results["benches"]
    assert set(benches) == {
        "store_churn",
        "resource_contention",
        "batch_grant",
        "rpc_fanout",
        "fig4_e2e",
    }

    churn = benches["store_churn"]
    assert churn["speedup"] >= 4.0
    assert churn["filter"]["speedup"] > churn["fifo"]["speedup"]
    assert churn["counters"]["max_waiter_queue"] >= churn["waiters"]
    assert churn["counters"]["events_scheduled"] > 0

    for name in ("resource_contention", "batch_grant", "rpc_fanout"):
        assert benches[name]["seconds"] > 0
        assert benches[name]["counters"]["events_executed"] > 0

    e2e = benches["fig4_e2e"]
    assert e2e["makespan"] > 0
    assert e2e["tasks"] > 0

    out = tmp_path / "BENCH_perf.json"
    write_results(str(out), results)
    assert json.loads(out.read_text())["benches"]["store_churn"]["waiters"]
