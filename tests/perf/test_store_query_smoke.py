"""Smoke test for the store-query perf bench (quick mode).

Runs the per-source index microbenchmark once at CI scale and checks
the contract the perf-regression harness depends on: stable JSON
schema, indexed-vs-legacy answer equivalence (the guard that the
per-source index is a pure optimization), and a conservative speedup
floor — full-scale runs measure well over 10x; the floor leaves
headroom for noisy shared runners.
"""

import os
import sys

BENCH_DIR = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks", "perf"
    )
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_store_query  # noqa: E402


def test_quick_bench_schema_equivalence_and_speedup():
    results = bench_store_query.run_all(quick=True)

    assert results["schema"] == 1
    assert results["quick"] is True
    bench = results["benches"]["store_source_query"]
    assert bench["records"] == bench["sources"] * 400
    assert bench["legacy"]["seconds"] > 0
    assert bench["indexed"]["seconds"] > 0
    # Identical answers from both algorithms, or the speedup is noise.
    assert bench["equivalent"] is True
    assert bench["legacy"]["matched"] == bench["indexed"]["matched"]
    # Full-scale runs measure >10x; CI floor is deliberately loose.
    assert bench["speedup"] >= 2.0


def test_legacy_replica_matches_on_out_of_order_appends():
    """The insort path: late-arriving publishes keep both stores aligned."""
    from repro.soma.storage import NamespaceStore

    indexed = NamespaceStore("ns")
    legacy = bench_store_query.LegacyNamespaceStore("ns")
    payload = bench_store_query._payload()
    appends = [
        (30.0, "a"), (10.0, "b"), (20.0, "a"), (20.0, "b"),
        (5.0, "a"), (30.0, "b"), (25.0, "a"),
    ]
    for at, source in appends:
        indexed.append(at, source, payload)
        legacy.append(at, source, payload)
    for source in (None, "a", "b", "missing"):
        assert indexed.records(source=source) == legacy.records(source=source)
        assert indexed.records(source=source, since=10.0, until=25.0) == (
            legacy.records(source=source, since=10.0, until=25.0)
        )
        assert indexed.latest(source) == legacy.latest(source)
