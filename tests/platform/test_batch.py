"""Batch system: FIFO node allocation."""

import pytest

from repro.platform import BatchError, Cluster, JobRequest, summit_like


@pytest.fixture
def cluster(env):
    return Cluster(env, summit_like(4))


def submit_and_hold(env, cluster, nodes, hold, log, name):
    alloc = yield from cluster.batch.submit(
        JobRequest(nodes=nodes, walltime=1e6, name=name)
    )
    log.append((name, env.now, [n.name for n in alloc.nodes]))
    yield env.timeout(hold)
    cluster.batch.release(alloc)


def test_immediate_grant(env, cluster):
    log = []
    env.process(submit_and_hold(env, cluster, 2, 10, log, "j1"))
    env.run()
    assert log[0][0:2] == ("j1", 0.0)
    assert len(log[0][2]) == 2


def test_fifo_blocking(env, cluster):
    log = []
    env.process(submit_and_hold(env, cluster, 3, 10, log, "big"))
    env.process(submit_and_hold(env, cluster, 2, 5, log, "waits"))
    # A 1-node job behind the 2-node job must NOT jump the queue.
    env.process(submit_and_hold(env, cluster, 1, 5, log, "small"))
    env.run()
    names_in_order = [name for name, _, _ in log]
    assert names_in_order == ["big", "small", "waits"] or names_in_order == [
        "big",
        "waits",
        "small",
    ]
    # 'waits' cannot start before 'big' releases at t=10.
    start = {name: t for name, t, _ in log}
    assert start["waits"] >= 10.0
    # strict FIFO: small (1 node) queued behind waits (2 nodes) while
    # big holds 3 of 4: small COULD fit but FIFO head blocks it.
    assert start["small"] >= 10.0


def test_too_large_job_rejected(env, cluster):
    def proc(env):
        yield from cluster.batch.submit(JobRequest(nodes=99, walltime=10))

    env.process(proc(env))
    with pytest.raises(BatchError):
        env.run()


def test_zero_node_job_rejected(env, cluster):
    def proc(env):
        yield from cluster.batch.submit(JobRequest(nodes=0, walltime=10))

    env.process(proc(env))
    with pytest.raises(BatchError):
        env.run()


def test_release_returns_nodes(env, cluster):
    log = []
    env.process(submit_and_hold(env, cluster, 4, 7, log, "all"))
    env.run()
    assert cluster.batch.free_nodes == 4
    assert cluster.batch.completed == 1


class TestBackfill:
    """Opt-in backfilling: later jobs that fit run past a blocked head."""

    def test_backfill_grants_fitting_job_past_blocked_head(self, env):
        from repro.platform.batch import BatchSystem
        from repro.platform.specs import summit_like
        from repro.platform.cluster import Cluster

        cluster = Cluster(env, summit_like(4))
        batch = BatchSystem(env, cluster.nodes, backfill=True)
        log = []

        def submit(nodes, hold, name):
            alloc = yield from batch.submit(
                JobRequest(nodes=nodes, walltime=1e6, name=name)
            )
            log.append((name, env.now))
            yield env.timeout(hold)
            batch.release(alloc)

        env.process(submit(3, 10, "big"))
        env.process(submit(2, 5, "waits"))  # head-of-line: needs 2, 1 free
        env.process(submit(1, 5, "small"))  # fits the single free node
        env.run()
        start = {name: t for name, t in log}
        # 'small' is backfilled at t=0 instead of waiting for 'big'.
        assert start["small"] == 0.0
        assert start["waits"] >= 10.0
        assert batch.backfilled == 1

    def test_backfill_preserves_order_among_blocked_jobs(self, env):
        from repro.platform.batch import BatchSystem
        from repro.platform.cluster import Cluster
        from repro.platform.specs import summit_like

        cluster = Cluster(env, summit_like(4))
        batch = BatchSystem(env, cluster.nodes, backfill=True)
        log = []

        def submit(nodes, hold, name):
            alloc = yield from batch.submit(
                JobRequest(nodes=nodes, walltime=1e6, name=name)
            )
            log.append((name, env.now))
            yield env.timeout(hold)
            batch.release(alloc)

        env.process(submit(4, 10, "full"))
        env.process(submit(3, 5, "first"))
        env.process(submit(3, 5, "second"))
        env.run()
        # Nothing can backfill (0 free); FIFO order must hold.
        assert [name for name, _ in log] == ["full", "first", "second"]
        assert batch.backfilled == 0

    def test_strict_fifo_is_the_default(self, env, cluster):
        assert cluster.batch.backfill is False
        log = []
        env.process(submit_and_hold(env, cluster, 3, 10, log, "big"))
        env.process(submit_and_hold(env, cluster, 2, 5, log, "waits"))
        env.process(submit_and_hold(env, cluster, 1, 5, log, "small"))
        env.run()
        start = {name: t for name, t, _ in log}
        assert start["small"] >= 10.0  # head still blocks everyone


def test_allocation_walltime_bookkeeping(env, cluster):
    box = {}

    def proc(env):
        alloc = yield from cluster.batch.submit(
            JobRequest(nodes=1, walltime=100.0)
        )
        box["deadline"] = alloc.deadline
        yield env.timeout(40)
        box["remaining"] = alloc.remaining_walltime()
        cluster.batch.release(alloc)

    env.process(proc(env))
    env.run()
    assert box["deadline"] == pytest.approx(100.0)
    assert box["remaining"] == pytest.approx(60.0)
