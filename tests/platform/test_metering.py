"""Step integrators and event counters."""

import pytest

from repro.platform.metering import EventCounter, StepIntegrator


class TestStepIntegrator:
    def test_integral_of_constant(self, env):
        meter = StepIntegrator(env, initial=3.0)
        env.run(until=10)
        assert meter.integral == pytest.approx(30.0)

    def test_integral_of_steps(self, env):
        meter = StepIntegrator(env)
        meter.add(2)            # t=0: 2
        env.run(until=5)
        meter.add(3)            # t=5: 5
        env.run(until=10)
        meter.add(-5)           # t=10: 0
        env.run(until=20)
        assert meter.integral == pytest.approx(2 * 5 + 5 * 5)

    def test_set_value(self, env):
        meter = StepIntegrator(env)
        meter.set(7.0)
        env.run(until=4)
        assert meter.integral == pytest.approx(28.0)
        assert meter.value == 7.0

    def test_mean_over_window(self, env):
        meter = StepIntegrator(env)
        env.run(until=10)
        meter.set(10.0)
        env.run(until=20)
        # Signal: 0 for [0,10), 10 for [10,20) -> mean over [0,20]=5
        assert meter.mean(since=0.0) == pytest.approx(5.0)
        assert meter.mean(since=10.0) == pytest.approx(10.0)

    def test_history_records_transitions(self, env):
        meter = StepIntegrator(env)
        meter.add(1)
        env.run(until=3)
        meter.add(1)
        history = meter.history()
        assert history[0] == (0.0, 0.0)
        assert history[-1] == (3.0, 2.0)


class TestEventCounter:
    def test_count(self, env):
        counter = EventCounter(env)
        for _ in range(5):
            counter.hit()
        assert counter.count == 5

    def test_rate_window(self, env):
        counter = EventCounter(env)
        counter.hit()
        env.run(until=100)
        counter.hit()
        counter.hit()
        assert counter.rate(window=10.0) == pytest.approx(0.2)

    def test_rate_zero_window(self, env):
        counter = EventCounter(env)
        assert counter.rate(0) == 0.0
