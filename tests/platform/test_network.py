"""Network model: latency, bandwidth, sharing, accounting."""

import pytest

from repro.platform import Network, NetworkSpec


@pytest.fixture
def net(env):
    spec = NetworkSpec(
        latency=0.0, link_bandwidth=100.0, taper_exponent=1.0,
        message_overhead=0.0,
    )
    return Network(env, spec, nodes=4)


def xfer(env, net, nbytes, box, key, messages=1):
    elapsed = yield from net.transfer(nbytes, messages=messages, tag=key)
    box[key] = (env.now, elapsed)


class TestTransfer:
    def test_single_transfer_link_limited(self, env, net):
        box = {}
        env.process(xfer(env, net, 200.0, box, "a"))
        env.run()
        # Bisection 400, but per-transfer cap = link 100 -> 2s.
        assert box["a"][0] == pytest.approx(2.0)

    def test_many_transfers_share_bisection(self, env, net):
        box = {}
        for i in range(8):
            env.process(xfer(env, net, 100.0, box, f"t{i}"))
        env.run()
        # 8 transfers over bisection 400 -> 50 each -> 2s.
        for i in range(8):
            assert box[f"t{i}"][0] == pytest.approx(2.0)

    def test_latency_and_message_overhead(self, env):
        spec = NetworkSpec(
            latency=0.5, link_bandwidth=100.0, taper_exponent=1.0,
            message_overhead=0.1,
        )
        net = Network(env, spec, nodes=2)
        box = {}
        env.process(xfer(env, net, 0.0, box, "empty", messages=3))
        env.run()
        assert box["empty"][0] == pytest.approx(0.5 + 0.3)

    def test_stats_accounting(self, env, net):
        box = {}
        env.process(xfer(env, net, 100.0, box, "x"))
        env.process(xfer(env, net, 50.0, box, "x"))
        env.run()
        assert net.stats.transfers == 2
        assert net.stats.bytes == pytest.approx(150.0)
        count, total = net.stats.by_tag["x"]
        assert count == 2 and total == pytest.approx(150.0)

    def test_estimate_time_uncongested(self, net):
        t = net.estimate_time(100.0)
        assert t == pytest.approx(1.0)

    def test_taper_reduces_bisection(self, env):
        spec = NetworkSpec(link_bandwidth=100.0, taper_exponent=0.5)
        net = Network(env, spec, nodes=16)
        assert net.bisection_bandwidth == pytest.approx(400.0)

    def test_pressure_zero_when_idle(self, net):
        assert net.pressure() == 0.0
