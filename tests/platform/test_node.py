"""Node model: allocation maps, compute, meters, memory."""

import pytest

from repro.platform import AllocationError, Node, NodeSpec


@pytest.fixture
def node(env):
    return Node(env, 0, NodeSpec())


class TestAllocation:
    def test_usable_cores_excludes_os(self, node):
        assert node.total_cores == 42

    def test_allocate_and_free(self, node):
        alloc = node.allocate(10, 2, owner="t1")
        assert node.free_cores == 32
        assert node.free_gpus == 4
        alloc.release()
        assert node.free_cores == 42
        assert node.free_gpus == 6

    def test_over_allocate_cores_raises(self, node):
        node.allocate(40)
        with pytest.raises(AllocationError):
            node.allocate(3)

    def test_over_allocate_gpus_raises(self, node):
        node.allocate(1, 6)
        with pytest.raises(AllocationError):
            node.allocate(1, 1)

    def test_negative_counts_rejected(self, node):
        with pytest.raises(ValueError):
            node.allocate(-1)

    def test_double_release_is_idempotent(self, node):
        alloc = node.allocate(5)
        alloc.release()
        alloc.release()
        assert node.free_cores == 42

    def test_owner_tracking(self, node):
        node.allocate(5, owner="task.1")
        node.allocate(3, 2, owner="task.2")
        assert node.owners() == {"task.1", "task.2"}

    def test_distinct_core_slots(self, node):
        a = node.allocate(5, owner="a")
        b = node.allocate(5, owner="b")
        assert not set(a.cores) & set(b.cores)


class TestCompute:
    def test_solo_compute_runs_at_full_speed(self, env, node):
        act = node.run_compute(cores=10, work=50.0, mem_intensity=0.6)
        env.run(act.done)
        assert env.now == pytest.approx(50.0)

    def test_busy_meter_tracks_compute(self, env, node):
        act = node.run_compute(cores=10, work=50.0)
        assert node.busy_cores.value == 10
        env.run(act.done)
        assert node.busy_cores.value == 0
        assert node.busy_cores.integral == pytest.approx(500.0)

    def test_memory_contention_two_jobs(self, env, node):
        # 2 x 12 demanding cores on an 18-capacity bus: overload 24/18.
        a = node.run_compute(cores=12, work=60.0, mem_intensity=0.5)
        b = node.run_compute(cores=12, work=60.0, mem_intensity=0.5)
        env.run(a.done)
        expected_slowdown = 0.5 + 0.5 * (24.0 / 18.0)
        assert env.now == pytest.approx(60.0 * expected_slowdown)

    def test_gpu_compute(self, env, node):
        act = node.run_gpu_compute(gpus=2, work=80.0)
        assert node.busy_gpus.value == 2
        env.run(act.done)
        assert env.now == pytest.approx(80.0 / node.spec.gpu_speed)
        assert node.busy_gpus.value == 0

    def test_jitter_injection_consumes_cpu(self, env, node):
        act = node.inject_jitter(cpu_seconds=0.5)
        env.run(act.done)
        assert env.now == pytest.approx(0.5)
        assert node.busy_cores.integral == pytest.approx(0.5)

    def test_cpu_utilization_instantaneous(self, env, node):
        node.run_compute(cores=21, work=100.0)
        assert node.cpu_utilization() == pytest.approx(0.5)


class TestMemory:
    def test_reserve_and_release(self, node):
        node.reserve_memory(1000)
        assert node.available_memory_mib == node.spec.memory_mib - 1000
        node.release_memory(1000)
        assert node.available_memory_mib == node.spec.memory_mib

    def test_out_of_memory_raises(self, node):
        with pytest.raises(AllocationError):
            node.reserve_memory(node.spec.memory_mib + 1)
