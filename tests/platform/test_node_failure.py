"""Node failure semantics at the platform level."""

import pytest

from repro.platform import Cluster, NodeFailure, summit_like


@pytest.fixture
def node(env):
    return Cluster(env, summit_like(2)).nodes[0]


def test_fail_kills_resident_computations(env, node):
    act = node.run_compute(cores=10, work=100.0)
    caught = {}

    def waiter(env):
        try:
            yield act.done
        except NodeFailure as exc:
            caught["exc"] = exc

    def killer(env):
        yield env.timeout(5)
        node.fail()

    env.process(waiter(env))
    env.process(killer(env))
    env.run()
    assert isinstance(caught["exc"], NodeFailure)
    assert not node.alive


def test_fail_zeroes_meters(env, node):
    node.run_compute(cores=10, work=100.0)
    node.run_gpu_compute(gpus=2, work=100.0)
    env.run(until=1)
    node.fail()
    assert node.busy_cores.value == 0
    assert node.busy_gpus.value == 0
    assert node.num_processes.value == 0
    env.run()  # no crash from the defused failures


def test_fail_is_idempotent(env, node):
    node.fail()
    node.fail()
    assert not node.alive


def test_unobserved_activity_fails_silently(env, node):
    # Nobody ever yields on this activity's done event.
    node.run_compute(cores=4, work=50.0)
    node.fail()
    env.run()  # pre-defused: the failure must not crash the run


def test_gpu_meter_balanced_after_normal_completion(env, node):
    act = node.run_gpu_compute(gpus=3, work=node.spec.gpu_speed * 2)
    env.run(act.done)
    assert node.busy_gpus.value == 0


def test_cancel_balances_meters(env, node):
    act = node.run_compute(cores=7, work=100.0)
    env.run(until=2)
    act.cancel()
    assert node.busy_cores.value == 0
    assert node.num_processes.value == 0
    env.run()
    # Integral only covers the 2 seconds it actually ran.
    assert node.busy_cores.integral == pytest.approx(14.0)
