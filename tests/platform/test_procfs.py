"""Synthetic /proc: cumulative counters and interval utilization."""

import pytest

from repro.platform import Cluster, summit_like


@pytest.fixture
def cluster(env):
    return Cluster(env, summit_like(2))


def test_snapshot_fields(env, cluster):
    node = cluster.nodes[0]
    fs = cluster.procfs(node)
    env.run(until=100)
    snap = fs.read()
    assert snap.hostname == node.name
    assert snap.timestamp == 100.0
    assert snap.uptime == pytest.approx(100.0)
    assert snap.ncores == 42


def test_utilization_differencing(env, cluster):
    node = cluster.nodes[0]
    fs = cluster.procfs(node)
    snaps = []

    def sampler(env):
        for _ in range(4):
            yield env.timeout(10)
            snaps.append(fs.read())

    def worker(env):
        yield env.timeout(10)
        act = node.run_compute(cores=21, work=20.0, mem_intensity=0.0)
        yield act.done

    env.process(sampler(env))
    env.process(worker(env))
    env.run()
    utils = [
        snap.utilization_since(prev)
        for prev, snap in zip([None] + snaps[:-1], snaps)
    ]
    assert utils[0] == pytest.approx(0.0)
    assert utils[1] == pytest.approx(0.5)  # 21 of 42 cores busy
    assert utils[2] == pytest.approx(0.5)
    assert utils[3] == pytest.approx(0.0)


def test_utilization_bounded(env, cluster):
    node = cluster.nodes[0]
    fs = cluster.procfs(node)
    act = node.run_compute(cores=42, work=100.0)
    env.run(until=50)
    snap = fs.read()
    assert 0.0 <= snap.utilization_since(None) <= 1.0


def test_to_conduit_tree_shape(env, cluster):
    node = cluster.nodes[0]
    env.run(until=30)
    snap = cluster.procfs(node).read()
    tree = snap.to_conduit()
    base = f"PROC/{node.name}/{snap.timestamp:.6f}"
    assert f"{base}/Uptime" in tree
    assert f"{base}/Num Processes" in tree
    assert f"{base}/Available RAM" in tree
    assert tree[f"{base}/stat/ncores"] == 42


def test_num_processes_counter(env, cluster):
    node = cluster.nodes[0]
    act = node.run_compute(cores=4, work=10.0)
    snap = cluster.procfs(node).read()
    assert snap.num_processes == 1
    env.run(act.done)
    assert cluster.procfs(node).read().num_processes == 0


def test_gpu_busy_accounting(env, cluster):
    node = cluster.nodes[0]
    act = node.run_gpu_compute(gpus=3, work=node.spec.gpu_speed * 10)
    env.run(act.done)
    snap = cluster.procfs(node).read()
    assert snap.gpu_busy_seconds == pytest.approx(30.0)
