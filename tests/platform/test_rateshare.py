"""Rate-shared execution: fair channels and contention domains."""

import pytest

from repro.platform.rateshare import ContentionDomain, FairShareChannel


def finish(env, pool_activity, box, key):
    yield pool_activity.done
    box[key] = env.now


class TestFairShareChannel:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            FairShareChannel(env, capacity=0)

    def test_single_transfer_full_rate(self, env):
        channel = FairShareChannel(env, capacity=10.0)
        act = channel.execute(work=100.0)
        env.run(act.done)
        assert env.now == pytest.approx(10.0)

    def test_two_transfers_share_equally(self, env):
        channel = FairShareChannel(env, capacity=10.0)
        a = channel.execute(work=100.0)
        b = channel.execute(work=100.0)
        box = {}
        env.process(finish(env, a, box, "a"))
        env.process(finish(env, b, box, "b"))
        env.run()
        assert box["a"] == pytest.approx(20.0)
        assert box["b"] == pytest.approx(20.0)

    def test_departure_speeds_up_survivor(self, env):
        channel = FairShareChannel(env, capacity=10.0)
        short = channel.execute(work=50.0)  # shares -> done at t=10
        long = channel.execute(work=100.0)
        box = {}
        env.process(finish(env, short, box, "short"))
        env.process(finish(env, long, box, "long"))
        env.run()
        # long: 50 units in [0,10] at rate 5, then 50 at rate 10 -> t=15
        assert box["short"] == pytest.approx(10.0)
        assert box["long"] == pytest.approx(15.0)

    def test_rate_cap_applies(self, env):
        channel = FairShareChannel(env, capacity=100.0)
        act = channel.execute(work=100.0, rate_cap=10.0)
        env.run(act.done)
        assert env.now == pytest.approx(10.0)

    def test_weighted_share(self, env):
        channel = FairShareChannel(env, capacity=12.0)
        heavy = channel.execute(work=80.0, weight=2.0)  # rate 8
        light = channel.execute(work=80.0, weight=1.0)  # rate 4
        box = {}
        env.process(finish(env, heavy, box, "heavy"))
        env.process(finish(env, light, box, "light"))
        env.run()
        assert box["heavy"] == pytest.approx(10.0)
        # light: 40 in [0,10] then alone at 12: 40/12 more
        assert box["light"] == pytest.approx(10.0 + 40.0 / 12.0)

    def test_zero_work_completes_immediately(self, env):
        channel = FairShareChannel(env, capacity=1.0)
        act = channel.execute(work=0.0)
        env.run(act.done)
        assert env.now == 0.0

    def test_negative_work_rejected(self, env):
        channel = FairShareChannel(env, capacity=1.0)
        with pytest.raises(ValueError):
            channel.execute(work=-1.0)

    def test_cancel_removes_activity(self, env):
        channel = FairShareChannel(env, capacity=10.0)
        a = channel.execute(work=100.0)
        b = channel.execute(work=100.0)

        def canceller(env):
            yield env.timeout(5)
            a.cancel()

        env.process(canceller(env))
        env.run(b.done)
        # b: 25 units by t=5 (rate 5), then 75 at rate 10 -> t=12.5
        assert env.now == pytest.approx(12.5)

    def test_delivered_accounting(self, env):
        channel = FairShareChannel(env, capacity=10.0)
        act = channel.execute(work=30.0)
        env.run(act.done)
        assert channel.delivered == pytest.approx(30.0)


class TestContentionDomain:
    def test_no_contention_below_capacity(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        act = domain.execute(work=50.0, demand=5.0, mem_intensity=0.8)
        env.run(act.done)
        assert env.now == pytest.approx(50.0)

    def test_memory_bound_slowdown(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        # Two activities, total demand 20 -> overload 2x on the
        # memory-bound half: slowdown = 0.5 + 0.5*2 = 1.5.
        a = domain.execute(work=60.0, demand=10.0, mem_intensity=0.5)
        b = domain.execute(work=60.0, demand=10.0, mem_intensity=0.5)
        box = {}
        env.process(finish(env, a, box, "a"))
        env.process(finish(env, b, box, "b"))
        env.run()
        assert box["a"] == pytest.approx(90.0)
        assert box["b"] == pytest.approx(90.0)

    def test_cpu_bound_immune_to_contention(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        cpu = domain.execute(work=50.0, demand=0.0, mem_intensity=0.0)
        domain.execute(work=500.0, demand=100.0, mem_intensity=1.0)
        env.run(cpu.done)
        assert env.now == pytest.approx(50.0)

    def test_pressure_metric(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        domain.execute(work=100.0, demand=5.0)
        assert domain.pressure() == pytest.approx(0.5)

    def test_departure_reduces_slowdown(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        short = domain.execute(work=15.0, demand=10.0, mem_intensity=1.0)
        long = domain.execute(work=60.0, demand=10.0, mem_intensity=1.0)
        box = {}
        env.process(finish(env, short, box, "s"))
        env.process(finish(env, long, box, "l"))
        env.run()
        # Both at rate 1/2 while together: short (15 units) done at
        # t=30; long has 45 units left, now at full rate -> t=75.
        assert box["s"] == pytest.approx(30.0)
        assert box["l"] == pytest.approx(75.0)

    def test_progress_property(self, env):
        domain = ContentionDomain(env, capacity=10.0)
        act = domain.execute(work=100.0)

        def check(env):
            yield env.timeout(25)
            assert 0.2 < act.progress < 0.3
            yield act.done
            assert act.progress == pytest.approx(1.0)

        env.run(env.process(check(env)))
