"""Platform specifications."""

from repro.platform import SUMMIT, summit_like


def test_summit_node_geometry():
    node = SUMMIT.node
    assert node.physical_cores == 44
    assert node.os_reserved_cores == 2
    assert node.usable_cores == 42
    assert node.gpus == 6


def test_summit_like_scales_nodes():
    spec = summit_like(128)
    assert spec.nodes == 128
    assert spec.node.usable_cores == 42


def test_with_nodes_returns_new_spec():
    spec = summit_like(4)
    bigger = spec.with_nodes(16)
    assert bigger.nodes == 16
    assert spec.nodes == 4  # original untouched


def test_specs_are_frozen():
    import dataclasses

    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        SUMMIT.node.gpus = 8  # type: ignore[misc]


def test_cluster_totals(env):
    from repro.platform import Cluster

    cluster = Cluster(env, summit_like(3))
    assert cluster.total_cores == 3 * 42
    assert cluster.total_gpus == 18
    assert cluster.utilization() == 0.0
    assert cluster.node_by_name("cn0001").index == 1


def test_node_by_name_missing(env):
    import pytest

    from repro.platform import Cluster

    cluster = Cluster(env, summit_like(2))
    with pytest.raises(KeyError):
        cluster.node_by_name("cn9999")
