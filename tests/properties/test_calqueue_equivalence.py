"""Property battery: calendar queue ≡ heap reference, under adversity.

Two layers:

* **Queue level** — random interleavings of pushes and pops (with
  adversarial tie patterns: same-instant bursts, URGENT/NORMAL mixes,
  far-future jumps, ``inf``) drained against a plain ``heapq`` model
  must produce the identical entry sequence.
* **Kernel level** — random schedule/cancel/reschedule programs run on
  two :class:`Environment`\\ s (one per backend) must fire events in
  the same order at the same times and skip the same number of
  tombstones.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarEventQueue, Environment

INF = float("inf")

# Delays chosen to stress every calendar zone: current bucket (0 and
# tiny), bucket map (seconds to hours), overflow (beyond the horizon),
# and the unbucketable far zone (inf).
adversarial_delays = st.sampled_from(
    [0.0, 0.0, 0.0, 1e-9, 0.001, 0.5, 1.0, 59.9, 60.0, 3600.0, 5e4, 1e7, INF]
)

ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push", "pop"]),
        adversarial_delays,
        st.integers(min_value=0, max_value=1),  # priority: URGENT/NORMAL
    ),
    min_size=1,
    max_size=200,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_queue_matches_heap_model_under_interleaving(program):
    queue = CalendarEventQueue()
    model: list = []
    now = 0.0
    eid = 0
    for op, delay, priority in program:
        if op == "pop" and model:
            expected = heapq.heappop(model)
            assert queue.pop() == expected
            now = expected[0]
        elif op == "push":
            entry = (now + delay, priority, eid, None)
            eid += 1
            queue.push(entry)
            heapq.heappush(model, entry)
        assert len(queue) == len(model)
        assert queue.next_time() == (model[0][0] if model else INF)
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == [heapq.heappop(model) for _ in range(len(model))]


@given(ops)
@settings(max_examples=50, deadline=None)
def test_queue_matches_heap_model_with_tiny_width(program):
    # A pathological initial width forces constant bucket traffic.
    queue = CalendarEventQueue(width=1e-6)
    model: list = []
    now = 0.0
    eid = 0
    for op, delay, priority in program:
        if op == "pop" and model:
            assert queue.pop() == heapq.heappop(model)
            now = queue.next_time() if model else now
        elif op == "push":
            entry = (now + delay, priority, eid, None)
            eid += 1
            queue.push(entry)
            heapq.heappush(model, entry)
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == [heapq.heappop(model) for _ in range(len(model))]


@given(
    anchor_offset=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
    later=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=100, deadline=None)
def test_overflow_bucket_key_collision_matches_heap_model(
    anchor_offset, later
):
    # Targeted adversary the fixed delay palette above cannot build:
    # schedule beyond the horizon (overflow), advance until the
    # horizon covers that key, then schedule into the *same* bucket
    # key.  The overflow entry must merge into the bucket before it
    # drains (REVIEW.md: a strict migrate compare drained the bucket
    # first even when the overflow entry was earlier in time).
    from repro.sim.calqueue import _HORIZON

    key = _HORIZON + 4  # just beyond the initial horizon (width=1.0)
    queue = CalendarEventQueue(width=1.0)
    model: list = []

    def push(entry):
        queue.push(entry)
        heapq.heappush(model, entry)

    push((key + anchor_offset, 1, 0, None))  # overflow anchor
    push((16.0, 1, 1, None))  # stepping event
    # Advancing to t=16 pushes the horizon past the anchor's key.
    assert queue.pop() == heapq.heappop(model)
    for eid, (offset, priority) in enumerate(later, start=2):
        push((key + offset, priority, eid, None))  # same bucket key
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == [heapq.heappop(model) for _ in range(len(model))]


def test_cur_bound_matches_key_partition_at_boundary():
    # Regression (Hypothesis-found): with width=1e-6 the naive bound
    # ``(key + 1) * width`` and the push key ``int(when * inv_width)``
    # disagree by an ulp (``inv_width`` is not exactly ``1 / width``).
    # A push at exactly the current bucket's upper boundary then keyed
    # back onto the *current* bucket but landed in the bucket map
    # behind it, draining after a same-time higher-priority entry.
    program = [
        ("push", 0.0, 0),
        ("push", 0.0, 0),
        ("push", 0.001, 0),
        ("pop", 0.0, 0),
        ("pop", 0.0, 0),
        ("push", 0.0, 0),
        ("push", 0.0, 0),
        ("push", 1.0, 1),
        ("pop", 0.0, 0),
        ("pop", 0.0, 0),
        ("pop", 0.0, 0),
        ("push", 0.0, 0),
    ]
    queue = CalendarEventQueue(width=1e-6)
    model: list = []
    now = 0.0
    eid = 0
    for op, delay, priority in program:
        if op == "pop" and model:
            assert queue.pop() == heapq.heappop(model)
            now = queue.next_time() if model else now
        elif op == "push":
            entry = (now + delay, priority, eid, None)
            eid += 1
            queue.push(entry)
            heapq.heappush(model, entry)
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == [heapq.heappop(model) for _ in range(len(model))]


@given(
    width=st.sampled_from([1e-6, 1e-3, 0.1, 1.0, 3.0, 1e3, 1e6]),
    key=st.integers(min_value=0, max_value=10**9),
)
@settings(max_examples=200, deadline=None)
def test_bound_for_is_exact_key_partition(width, key):
    # ``when < bound``  <=>  ``int(when * inv_width) <= key`` — checked
    # one ulp either side of the returned boundary.
    import math

    queue = CalendarEventQueue(width=width)
    bound = queue._bound_for(key)
    inv = queue._inv_width
    assert int(bound * inv) > key
    below = math.nextafter(bound, -math.inf)
    if below > 0:
        assert int(below * inv) <= key


# -- kernel level --------------------------------------------------------

kernel_programs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=7),  # cancel target stride
        st.booleans(),  # reschedule after cancel?
    ),
    min_size=1,
    max_size=40,
)


def _run_kernel_program(backend, program):
    env = Environment(sanitize=False, event_queue=backend)
    fired = []
    pending = []

    def note(tag):
        def callback(event):
            fired.append((tag, env.now))

        return callback

    for i, (delay, stride, reschedule) in enumerate(program):
        timeout = env.timeout(delay)
        timeout.callbacks.append(note(f"t{i}"))
        pending.append(timeout)
        if stride and i % stride == 0 and pending:
            victim = pending[len(pending) // 2]
            victim.cancel_scheduled()
            if reschedule:
                replacement = env.timeout(delay / 2)
                replacement.callbacks.append(note(f"r{i}"))
                pending.append(replacement)
    env.run()
    return fired, env.kernel_counters()


@given(kernel_programs)
@settings(max_examples=100, deadline=None)
def test_backends_fire_identically_with_cancellations(program):
    fired_heap, counters_heap = _run_kernel_program("heap", program)
    fired_cal, counters_cal = _run_kernel_program("calendar", program)
    assert fired_heap == fired_cal
    # Byte-identical kernel counters, including tombstone skips.
    assert counters_heap == counters_cal
    assert counters_heap["tombstones_skipped"] == counters_cal[
        "tombstones_skipped"
    ]


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_same_instant_bursts_preserve_creation_order(delays):
    # All timeouts at the *same* instant must fire in creation (eid)
    # order on both backends — the tie adversary for bucket ordering.
    orders = {}
    for backend in ("heap", "calendar"):
        env = Environment(sanitize=False, event_queue=backend)
        fired = []
        for i, _ in enumerate(delays):
            timeout = env.timeout(5.0)
            timeout.callbacks.append(
                lambda event, i=i: fired.append(i)
            )
        env.run()
        orders[backend] = fired
    assert orders["heap"] == orders["calendar"] == list(range(len(delays)))
