"""Property-based tests for the Conduit data model."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conduit import Node

# Path segments: nonempty, no slashes.
segment = st.text(
    alphabet=string.ascii_letters + string.digits + "._-",
    min_size=1,
    max_size=8,
)
path = st.lists(segment, min_size=1, max_size=4).map("/".join)
scalar = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.binary(max_size=16),
)


def build(pairs):
    node = Node()
    inserted = {}
    for p, v in pairs:
        try:
            node[p] = v
        except Exception:
            # Prefix conflicts (leaf vs object) are legal rejections.
            continue
        inserted[p] = v
        # Drop any previously recorded path invalidated by overwrite.
        for other in list(inserted):
            if other != p and (
                other.startswith(p + "/") or p.startswith(other + "/")
            ):
                del inserted[other]
    return node, inserted


@given(st.lists(st.tuples(path, scalar), max_size=12))
@settings(max_examples=200)
def test_set_then_get_round_trip(pairs):
    node, inserted = build(pairs)
    for p, v in inserted.items():
        got = node[p]
        if isinstance(v, float) and isinstance(got, float):
            assert got == v or (got != got and v != v)
        else:
            assert got == v


@given(st.lists(st.tuples(path, scalar), max_size=12))
@settings(max_examples=200)
def test_json_round_trip_preserves_tree(pairs):
    node, _ = build(pairs)
    restored = Node.from_json(node.to_json())
    assert restored.diff(node) == []


@given(st.lists(st.tuples(path, scalar), max_size=10))
@settings(max_examples=100)
def test_copy_is_independent(pairs):
    node, inserted = build(pairs)
    clone = node.copy()
    assert clone == node
    clone["___mutant___"] = 1
    assert "___mutant___" not in node


@given(
    st.lists(st.tuples(path, scalar), max_size=8),
    st.lists(st.tuples(path, scalar), max_size=8),
)
@settings(max_examples=100)
def test_update_union_of_leaves(pairs_a, pairs_b):
    a, _ = build(pairs_a)
    b, _ = build(pairs_b)
    merged = a.copy()
    try:
        merged.update(b)
    except Exception:
        return  # structural conflict: leaf vs object — legal rejection
    leaves_b = dict(b.leaves())
    merged_leaves = dict(merged.leaves())
    # Every leaf of b survives verbatim in the merge.
    for p, v in leaves_b.items():
        assert merged_leaves.get(p) == v or (v != v)


@given(st.lists(st.tuples(path, scalar), max_size=10))
@settings(max_examples=100)
def test_diff_self_is_empty(pairs):
    node, _ = build(pairs)
    assert node.diff(node) == []
    assert node == node.copy()


@given(st.lists(st.tuples(path, scalar), max_size=10))
@settings(max_examples=100)
def test_nbytes_nonnegative_and_monotone(pairs):
    node, _ = build(pairs)
    before = node.nbytes()
    assert before >= 0
    node["zzz_extra/leaf"] = "payload"
    assert node.nbytes() > before


@given(st.lists(st.tuples(path, scalar), max_size=10))
@settings(max_examples=100)
def test_num_leaves_matches_iteration(pairs):
    node, _ = build(pairs)
    assert node.num_leaves() == len(list(node.leaves()))
    assert node.num_leaves() == len(node.paths())
