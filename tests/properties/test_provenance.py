"""Property-based tests for the run-provenance graph.

For randomly-shaped monitored bag-of-tasks runs — fault-free and under
Hypothesis-chosen chaos plans — the builder must always produce a graph
satisfying the structural invariants the validators pin:

* acyclic (a topological order exists);
* single-rooted at the run-start event;
* every task node reachable from the run root along forward edges;
* every edge respects happens-before (``src.t <= dst.t`` in sim time);

plus the analysis identity: the critical path's edge durations
telescope to exactly the end-to-end makespan.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import run_workflow
from repro.faults import FaultPlan
from repro.provenance import (
    attribution_total,
    build_graph,
    critical_path,
    set_default_provenance,
    validate_graph,
)
from repro.soma import HARDWARE, WORKFLOW, SomaConfig
from repro.telemetry import drain_telemetries, set_default_telemetry
from repro.workloads import uniform_bag

MONITORING = SomaConfig(
    namespaces=(WORKFLOW, HARDWARE),
    monitors=("proc",),
    monitoring_frequency=30.0,
)


def _graph_for(seed, count, duration, plan=None):
    def workload(client, deployment):
        tasks = client.submit_tasks(uniform_bag(count, duration=duration))
        yield from client.wait_tasks(tasks)
        return {"done": len(tasks)}

    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    drain_telemetries()
    try:
        result = run_workflow(
            workload,
            nodes=2,
            service_nodes=1,
            soma_config=MONITORING,
            seed=seed,
            fault_plan=plan,
        )
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
    graph = build_graph(result)
    drain_telemetries()
    return result, graph


def _assert_invariants(result, graph):
    violations = validate_graph(graph)
    assert violations == [], [v.format() for v in violations]
    # The four invariants, restated directly (not just via the validator):
    for edge in graph.edges:
        assert edge.t_src <= edge.t_dst
    assert graph.topo_order() is not None
    rootless = [e for e in graph.events if not graph.in_edges(e)]
    assert rootless == [graph.root]
    reachable = graph.reachable_from(graph.root)
    for uid, (start, end) in graph.task_events.items():
        assert start.eid in reachable, uid
        assert end.eid in reachable, uid
    assert len(graph.task_events) == len(result.tasks)
    # Telescoping is algebraically exact; summing the per-edge
    # differences reintroduces float round-off, hence the tolerance.
    assert attribution_total(critical_path(graph)) == pytest.approx(
        graph.end.t - graph.root.t, rel=1e-9
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=12),
    duration=st.floats(min_value=1.0, max_value=300.0),
)
def test_fault_free_runs_build_valid_graphs(seed, count, duration):
    result, graph = _graph_for(seed, count, duration)
    _assert_invariants(result, graph)


def _chaos_plan(choice, at, window):
    plan = FaultPlan()
    if choice == "rpc_drop":
        return plan.rpc_drop(at, probability=0.5, duration=window, stall=2.0)
    if choice == "rpc_delay":
        return plan.rpc_delay(at, probability=0.5, delay=5.0, duration=window)
    if choice == "outage":
        return plan.service_outage(at, duration=window)
    return plan.rpc_duplicate(at, probability=0.5, duration=window)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=2, max_value=10),
    duration=st.floats(min_value=30.0, max_value=300.0),
    choice=st.sampled_from(("rpc_drop", "rpc_delay", "outage", "duplicate")),
    at=st.floats(min_value=0.0, max_value=120.0),
    window=st.floats(min_value=10.0, max_value=200.0),
)
def test_chaos_runs_build_valid_graphs(seed, count, duration, choice, at, window):
    result, graph = _graph_for(
        seed, count, duration, plan=_chaos_plan(choice, at, window)
    )
    _assert_invariants(result, graph)
    # The plan's windows surface as fault events bracketed by the run.
    fault_starts = list(graph.by_kind("fault.start"))
    fault_ends = list(graph.by_kind("fault.end"))
    assert len(fault_starts) == len(fault_ends)
    for event in fault_starts + fault_ends:
        assert 0.0 <= event.t <= graph.end.t
