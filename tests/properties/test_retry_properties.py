"""Property-based tests for :class:`repro.faults.RetryPolicy`.

The retry layer's contract (attempt bound, deadline bound, monotone
capped backoff, seed-stable schedules) is what the whole degradation
story rests on, so it gets pinned down over the full parameter space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryExhausted, RetryPolicy
from repro.messaging import ServiceUnavailable
from repro.sim import Environment

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=5.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=0.0, max_value=30.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    deadline=st.one_of(
        st.none(), st.floats(min_value=0.5, max_value=120.0)
    ),
    timeout=st.one_of(st.none(), st.floats(min_value=0.1, max_value=10.0)),
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(policy=policies, seed=seeds)
@settings(max_examples=200, deadline=None)
def test_schedule_shape_and_monotonicity(policy, seed):
    rng = np.random.default_rng(seed)
    schedule = policy.schedule(rng)
    assert len(schedule) == policy.max_attempts - 1
    for delay in schedule:
        assert 0.0 <= delay <= policy.max_delay or delay == pytest.approx(
            policy.max_delay
        )
    # Monotone non-decreasing regardless of jitter draws.
    assert all(a <= b for a, b in zip(schedule, schedule[1:]))


@given(policy=policies, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_identical_seeds_identical_schedules(policy, seed):
    a = policy.schedule(np.random.default_rng(seed))
    b = policy.schedule(np.random.default_rng(seed))
    assert a == b


@given(policy=policies)
@settings(max_examples=100, deadline=None)
def test_always_failing_call_respects_attempt_bound(policy):
    env = Environment()
    attempts = []

    def attempt():
        attempts.append(env.now)
        raise ServiceUnavailable("always down")
        yield  # pragma: no cover - generator marker

    def driver():
        yield from policy.execute(env, attempt)

    proc = env.process(driver())
    with pytest.raises(RetryExhausted) as err:
        env.run(proc)
    assert 1 <= len(attempts) <= policy.max_attempts
    assert err.value.attempts == len(attempts)
    assert isinstance(err.value.last_error, ServiceUnavailable)


@given(policy=policies, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_elapsed_time_never_exceeds_deadline(policy, seed):
    env = Environment()
    rng = np.random.default_rng(seed)

    def attempt():
        yield env.timeout(0.05)
        raise ServiceUnavailable("always down")

    def driver():
        yield from policy.execute(env, attempt, rng=rng)

    proc = env.process(driver())
    with pytest.raises(RetryExhausted):
        env.run(proc)
    if policy.deadline is not None:
        # Backoff sleeps are clipped to the remaining budget, and the
        # final attempt is bounded by the per-attempt timeout.
        slack = policy.timeout if policy.timeout is not None else 0.05
        assert env.now <= policy.deadline + slack + 1e-9


@given(policy=policies, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_retry_timeline_is_seed_stable(policy, seed):
    def timeline():
        env = Environment()
        rng = np.random.default_rng(seed)
        times = []

        def attempt():
            times.append(env.now)
            yield env.timeout(0.01)
            raise ServiceUnavailable("always down")

        def driver():
            yield from policy.execute(env, attempt, rng=rng)

        proc = env.process(driver())
        with pytest.raises(RetryExhausted):
            env.run(proc)
        return times

    assert timeline() == timeline()


def test_successful_call_draws_no_rng():
    """The happy path must not consume jitter randomness."""
    env = Environment()
    policy = RetryPolicy(jitter=0.5)
    rng = np.random.default_rng(7)
    before = rng.bit_generator.state["state"]["state"]

    def attempt():
        yield env.timeout(0.1)
        return "ok"

    def driver():
        result = yield from policy.execute(env, attempt, rng=rng)
        return result

    proc = env.process(driver())
    assert env.run(proc) == "ok"
    assert rng.bit_generator.state["state"]["state"] == before


def test_non_transient_errors_propagate_immediately():
    env = Environment()
    policy = RetryPolicy(max_attempts=5, base_delay=0.1)
    calls = []

    def attempt():
        calls.append(env.now)
        raise ValueError("permanent")
        yield  # pragma: no cover - generator marker

    def driver():
        yield from policy.execute(env, attempt)

    proc = env.process(driver())
    with pytest.raises(ValueError):
        env.run(proc)
    assert len(calls) == 1
