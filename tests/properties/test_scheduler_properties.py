"""Property-based tests on RP scheduling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)

task_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50),  # ranks
        st.integers(min_value=0, max_value=2),  # gpus per rank
        st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


def run_workload(specs, seed):
    session = Session(cluster_spec=summit_like(3), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=2, agent_nodes=1)
        )
        descriptions = []
        for i, (ranks, gpr, duration) in enumerate(specs):
            descriptions.append(
                TaskDescription(
                    name=f"t{i}",
                    model=FixedDurationModel(duration),
                    ranks=ranks,
                    gpus_per_rank=gpr,
                    multi_node=(gpr == 0),
                )
            )
        tasks = client.submit_tasks(descriptions)
        yield from client.wait_tasks(tasks)
        return pilot, tasks

    pilot, tasks = env.run(env.process(main(env)))
    client.close()
    return session, client, pilot, tasks


@given(task_specs, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_every_task_reaches_a_final_state(specs, seed):
    _, _, _, tasks = run_workload(specs, seed)
    for task in tasks:
        assert task.is_final


@given(task_specs, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_no_node_ever_oversubscribed(specs, seed):
    session, client, pilot, tasks = run_workload(specs, seed)
    # Replay alloc/free trace per node and check instantaneous sums.
    per_node_events = {}
    for rec in session.tracer.select(category="rp.alloc"):
        task = client.task_manager.tasks[rec.name]
        start = task.time_of(TaskState.AGENT_EXECUTING_PENDING)
        stop = task.time_of("launch_stop") or task.finished_at
        node = rec.get("node")
        per_node_events.setdefault(node, []).append(
            (start, len(rec.get("cores")), len(rec.get("gpus")))
        )
        per_node_events.setdefault(node, []).append(
            (stop, -len(rec.get("cores")), -len(rec.get("gpus")))
        )
    for node, events in per_node_events.items():
        events.sort()
        cores = gpus = 0
        for _, dc, dg in events:
            cores += dc
            gpus += dg
            assert cores <= 42
            assert gpus <= 6


@given(task_specs, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_task_states_move_strictly_forward(specs, seed):
    from repro.rp.states import TASK_FINAL_STATES, TASK_STATE_ORDER

    order = {s: i for i, s in enumerate(TASK_STATE_ORDER)}
    _, _, _, tasks = run_workload(specs, seed)
    for task in tasks:
        states = [e.state for e in task.events if e.name == "state"]
        indices = [order[s] for s in states if s in order]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        # Exactly one final state, at the end.
        finals = [s for s in states if s in TASK_FINAL_STATES]
        assert len(finals) == 1
        assert states[-1] == finals[0]
