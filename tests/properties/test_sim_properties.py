"""Property-based tests on kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store
from repro.platform.rateshare import ContentionDomain, FairShareChannel

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


@given(delays)
@settings(max_examples=100)
def test_time_never_goes_backwards(ds):
    env = Environment()
    observed = []

    def waiter(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in ds:
        env.process(waiter(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(ds)
    assert env.now == max(ds)


@given(delays)
@settings(max_examples=100)
def test_timeouts_fire_at_exact_times(ds):
    env = Environment()
    fired = {}

    def waiter(env, i, delay):
        yield env.timeout(delay)
        fired[i] = env.now

    for i, d in enumerate(ds):
        env.process(waiter(env, i, d))
    env.run()
    for i, d in enumerate(ds):
        assert fired[i] == d


@given(st.lists(st.integers(), min_size=0, max_size=30))
@settings(max_examples=100)
def test_store_is_fifo_lossless(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_contention_never_speeds_up_work(jobs):
    """With contention, each job takes at least its solo time."""
    capacity = 10.0
    env = Environment()
    domain = ContentionDomain(env, capacity=capacity)
    finish = {}

    def runner(env, i, work, demand):
        act = domain.execute(work=work, demand=demand, mem_intensity=0.5)
        yield act.done
        finish[i] = env.now

    for i, (work, demand) in enumerate(jobs):
        env.process(runner(env, i, work, demand))
    env.run()
    for i, (work, _) in enumerate(jobs):
        assert finish[i] >= work * (1.0 - 1e-9)


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_fair_channel_conserves_work(works):
    """Total time >= total work / capacity (work conservation)."""
    capacity = 5.0
    env = Environment()
    channel = FairShareChannel(env, capacity=capacity)
    for work in works:
        channel.execute(work=work)
    env.run()
    assert env.now >= sum(works) / capacity * (1.0 - 1e-9)
    assert channel.delivered >= sum(works) * (1.0 - 1e-6)
