"""Property-based tests for the span tree invariants.

Two layers: synthetic trees built from Hypothesis-generated nesting
programs (pure telemetry machinery, thousands of shapes), and real
chaos runs whose retried RPCs must still produce a well-formed forest.

Invariants pinned:

* every trace has exactly one root, and every task trace exactly one
  ``task:`` root;
* a closed child's interval is contained in its closed parent's;
* no span's parent_id dangles;
* span start times are monotone in span_id (ids mint in causal order);
* retried/chaos-torn RPC attempt spans close exactly once
  (``double_closes == 0``, no attempt span left open).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.telemetry import Telemetry, drain_telemetries


# -- synthetic nesting programs ---------------------------------------

# A program is a tree of (duration, children); each node becomes an
# activated span that sleeps, runs its children (some spawned as
# separate processes), then sleeps again.
nodes = st.recursive(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.booleans(),  # run this node in a spawned process?
        st.just([]),
    ),
    lambda leaf: st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.booleans(),
        st.lists(leaf, max_size=3),
    ),
    max_leaves=12,
)
programs = st.lists(nodes, min_size=1, max_size=3)


def _execute(env, tel, program):
    def run_node(node, index):
        duration, _spawn, children = node
        with tel.span(f"n{index}", component=f"c{index % 3}"):
            yield env.timeout(duration)
            yield from run_children(children)
            yield env.timeout(duration)

    def run_children(children):
        spawned = []
        for index, child in enumerate(children):
            if child[1]:
                spawned.append(env.process(run_node(child, index)))
            else:
                yield from run_node(child, index)
        for proc in spawned:
            yield proc

    def main():
        yield from run_children([(d, False, c) for d, _s, c in program])

    env.run(env.process(main()))


def _forest_invariants(tel):
    by_id = {span.span_id: span for span in tel.spans}
    roots_per_trace: dict[int, int] = {}
    for span in tel.spans:
        if span.parent_id is None:
            roots_per_trace[span.trace_id] = (
                roots_per_trace.get(span.trace_id, 0) + 1
            )
        else:
            parent = by_id.get(span.parent_id)
            assert parent is not None, "dangling parent_id"
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start
            if parent.end is not None and span.end is not None:
                assert span.end <= parent.end, "child escapes parent"
    for trace_id in {s.trace_id for s in tel.spans}:
        assert roots_per_trace.get(trace_id, 0) == 1, (
            f"trace {trace_id} must have exactly one root"
        )
    ids = [s.span_id for s in tel.spans]
    assert ids == sorted(ids)
    starts = [s.start for s in tel.spans]
    assert all(a <= b for a, b in zip(starts, starts[1:])), (
        "span ids must mint in causal (time) order"
    )


@given(program=programs)
@settings(max_examples=60, deadline=None)
def test_synthetic_trees_hold_invariants(program):
    env = Environment()
    tel = Telemetry(env, enabled=True)
    try:
        _execute(env, tel, program)
    finally:
        drain_telemetries()
    assert tel.spans, "every program opens at least one span"
    assert tel.double_closes == 0
    assert tel.counters()["open_spans"] == 0
    assert tel.spans_started == tel.spans_closed == len(tel.spans)
    _forest_invariants(tel)


@given(program=programs)
@settings(max_examples=25, deadline=None)
def test_synthetic_trees_are_deterministic(program):
    def build():
        env = Environment()
        tel = Telemetry(env, enabled=True)
        try:
            _execute(env, tel, program)
        finally:
            drain_telemetries()
        return [
            (s.span_id, s.parent_id, s.trace_id, s.name, s.start, s.end)
            for s in tel.spans
        ]

    assert build() == build()


# -- real runs under chaos --------------------------------------------


def _chaos_run(seed):
    from repro.faults import FaultPlan, RetryPolicy
    from repro.rp import FixedDurationModel, TaskDescription
    from repro.soma import HARDWARE, SomaConfig, WORKFLOW
    from repro.telemetry import set_default_telemetry

    from tests.faults.harness import arm, boot

    soma = SomaConfig(
        namespaces=(WORKFLOW, HARDWARE),
        monitors=("proc", "rp"),
        monitoring_frequency=2.0,
        retry=RetryPolicy(
            max_attempts=4,
            base_delay=0.2,
            multiplier=2.0,
            max_delay=2.0,
            jitter=0.1,
            deadline=20.0,
            timeout=5.0,
        ),
    )
    previous = set_default_telemetry(True)
    try:
        session, client, box = boot(nodes=2, seed=seed, soma=soma)
        env = session.env
        arm(
            session,
            FaultPlan()
            .rpc_drop(at=env.now + 4.0, probability=0.3, duration=25.0,
                      stall=2.0)
            .rpc_duplicate(at=env.now + 4.0, probability=0.2, duration=25.0),
        )

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(name="work", model=FixedDurationModel(30.0))]
            )
            yield from client.wait_tasks(tasks)
            yield env.timeout(10.0)

        env.run(env.process(main(env)))
        client.close()
    finally:
        set_default_telemetry(previous)
        hubs = drain_telemetries()
    (hub,) = hubs
    return session, box["deployment"], hub


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=5, deadline=None)
def test_chaos_rpc_attempt_spans_close_exactly_once(seed):
    _session, deployment, hub = _chaos_run(seed)
    assert hub.double_closes == 0
    attempts = [s for s in hub.spans if s.name.startswith("rpc.attempt:")]
    serves = [s for s in hub.spans if s.name.startswith("rpc.serve:")]
    assert attempts, "chaos run must issue RPCs"
    assert all(s.closed for s in attempts), "attempt spans must all close"
    assert all(s.closed for s in serves)
    # Every successful transport attempt shows as a span; retries and
    # chaos-torn attempts add more spans on top, never fewer.
    models = list(deployment.hw_monitor_models())
    if deployment.rp_monitor_model is not None:
        models.append(deployment.rp_monitor_model)
    clients = [m.client for m in models if m.client is not None]
    assert clients
    successful = sum(c._rpc.calls for c in clients)
    retried = sum(c._rpc.retries for c in clients)
    assert len(attempts) >= successful > 0
    if retried:
        assert len(attempts) > successful
    _forest_invariants_open_tolerant(hub)


def _forest_invariants_open_tolerant(tel):
    """Forest invariants minus the everything-closed assumption."""
    by_id = {span.span_id: span for span in tel.spans}
    roots: dict[int, int] = {}
    for span in tel.spans:
        if span.parent_id is None:
            roots[span.trace_id] = roots.get(span.trace_id, 0) + 1
        else:
            parent = by_id.get(span.parent_id)
            assert parent is not None, "dangling parent_id"
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start
    for trace_id in {s.trace_id for s in tel.spans}:
        assert roots.get(trace_id, 0) == 1
    ids = [s.span_id for s in tel.spans]
    assert ids == sorted(ids)
