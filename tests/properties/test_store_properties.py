"""Property-based tests for Store waiter dispatch.

Interleaves capacity-bounded puts and gets with cancellations of
already-triggered and still-pending waiters, then checks the store
against a straightforward reference model: FIFO order is preserved,
no item is ever lost or duplicated, and cancelling a triggered waiter
is a no-op.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store


class ModelStore:
    """Reference implementation of Store's dispatch semantics."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []
        self.pending_puts = []  # [(op_id, value)]
        self.pending_gets = []  # [op_id]
        self.stored = []  # values in storage order
        self.stored_ids = set()  # put op_ids that made it into the store
        self.received = {}  # get op_id -> value

    def dispatch(self):
        progress = True
        while progress:
            progress = False
            while self.pending_puts and len(self.items) < self.capacity:
                op_id, value = self.pending_puts.pop(0)
                self.items.append(value)
                self.stored.append(value)
                self.stored_ids.add(op_id)
                progress = True
            while self.pending_gets and self.items:
                op_id = self.pending_gets.pop(0)
                self.received[op_id] = self.items.pop(0)
                progress = True

    def put(self, op_id, value):
        self.pending_puts.append((op_id, value))
        self.dispatch()

    def get(self, op_id):
        self.pending_gets.append(op_id)
        self.dispatch()

    def cancel(self, op_id):
        for i, (pid, _) in enumerate(self.pending_puts):
            if pid == op_id:
                del self.pending_puts[i]
                self.dispatch()
                return
        if op_id in self.pending_gets:
            self.pending_gets.remove(op_id)
            self.dispatch()


ops_strategy = st.lists(
    st.one_of(
        st.just(("put",)),
        st.just(("get",)),
        # Cancel the op issued this many steps back (may be triggered
        # already, may be pending, may not exist — all must be safe).
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10)),
    ),
    min_size=1,
    max_size=60,
)


@given(ops=ops_strategy, capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=200)
def test_store_matches_reference_model(ops, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    model = ModelStore(capacity)

    events = []  # (op_id, kind, event) in issue order
    next_value = 0

    for op in ops:
        if op[0] == "put":
            op_id = len(events)
            event = store.put(next_value)
            events.append((op_id, "put", event))
            model.put(op_id, next_value)
            next_value += 1
        elif op[0] == "get":
            op_id = len(events)
            event = store.get()
            events.append((op_id, "get", event))
            model.get(op_id)
        else:
            back = op[1]
            if back < len(events):
                op_id, kind, event = events[-1 - back]
                if not event.triggered:
                    event.cancel()
                    model.cancel(op_id)

    # Triggered events must match the model exactly.
    for op_id, kind, event in events:
        if kind == "put":
            # A put is triggered iff the model stored its item.
            assert event.triggered == (op_id in model.stored_ids)
        else:
            if op_id in model.received:
                assert event.triggered
                assert event.value == model.received[op_id]
            else:
                assert not event.triggered

    # FIFO: values received by gets, in issue order of the gets, are a
    # prefix of the stored sequence.
    received_in_order = [
        event.value
        for _, kind, event in events
        if kind == "get" and event.triggered
    ]
    assert received_in_order == model.stored[: len(received_in_order)]

    # No lost or duplicated items: everything stored is either received
    # or still buffered, in order.
    assert received_in_order + list(store.items) == model.stored
    assert list(store.items) == model.items


@given(
    n_gets=st.integers(min_value=1, max_value=20),
    cancel_idx=st.integers(min_value=0, max_value=19),
)
@settings(max_examples=100)
def test_cancelled_get_never_steals_an_item(n_gets, cancel_idx):
    """A cancelled waiter is skipped; later waiters get the items."""
    env = Environment()
    store = Store(env)
    gets = [store.get() for _ in range(n_gets)]
    victim = gets[min(cancel_idx, n_gets - 1)]
    victim.cancel()
    for i in range(n_gets):
        store.put(i)
    env.run()
    survivors = [g for g in gets if g is not victim]
    assert not victim.triggered
    assert [g.value for g in survivors] == list(range(len(survivors)))


@given(capacity=st.integers(min_value=1, max_value=3))
@settings(max_examples=50)
def test_cancel_after_trigger_is_noop(capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    put = store.put("x")
    assert put.triggered
    put.cancel()  # must not un-store the item
    get = store.get()
    assert get.triggered and get.value == "x"
