"""End-to-end builder battery: real runs in, valid typed graphs out.

One adaptive DDMD run (module fixture) backs the taxonomy and
acceptance assertions: the graph must validate, the critical path must
attribute exactly the end-to-end makespan, and a late task's why-chain
must cross the EnTK -> RP -> SOMA component boundary the way the paper's
Fig 4 walkthrough does.
"""

from __future__ import annotations

import pytest

from repro.provenance import (
    ProvenanceCapture,
    attribution_total,
    build_graph,
    chain_components,
    critical_path,
    default_provenance,
    render_critical_path,
    resolve_target,
    set_default_provenance,
    validate_graph,
    why_chain,
)
from repro.telemetry import drain_telemetries, set_default_telemetry

SEED = 7


@pytest.fixture(scope="module")
def adaptive_graph():
    from repro.experiments import adaptive_experiment, run_ddmd_experiment

    prev_tel = set_default_telemetry(True)
    prev_prov = set_default_provenance(True)
    drain_telemetries()
    try:
        result = run_ddmd_experiment(
            adaptive_experiment(), seed=SEED, adaptive_analysis=True
        )
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
    graph = build_graph(result)
    drain_telemetries()
    return result, graph


def test_default_toggle_round_trips():
    previous = set_default_provenance(True)
    try:
        assert default_provenance() is True
        assert set_default_provenance(False) is True
        assert default_provenance() is False
    finally:
        set_default_provenance(previous)


def test_capture_rides_the_hub(adaptive_graph):
    result, _ = adaptive_graph
    capture = result.session.telemetry.provenance
    assert isinstance(capture, ProvenanceCapture)
    counters = capture.counters()
    assert counters["rpc_sends"] > 0
    assert counters["rpc_sends"] == counters["rpc_serves"]
    assert counters["store_writes"] > 0
    assert counters["store_reads"] > 0
    assert counters["grants"] == len(result.tasks)


def test_graph_is_valid_and_complete(adaptive_graph):
    result, graph = adaptive_graph
    assert validate_graph(graph) == []
    assert len(graph.task_events) == len(result.tasks)
    # Every span contributed a start/end pair plus run boundary events.
    hub = result.session.telemetry
    assert len(graph.span_events) == len(hub.spans)


def test_edge_taxonomy_present(adaptive_graph):
    _, graph = adaptive_graph
    kinds = graph.edge_counts()
    for kind in (
        "run",
        "span",
        "program",
        "join",
        "rpc.wire",
        "rpc.queue",
        "wait-on-grant",
        "launch",
        "wait-on-store",
    ):
        assert kinds.get(kind, 0) > 0, f"no {kind!r} edges in a real run"


def test_critical_path_attributes_full_makespan(adaptive_graph):
    result, graph = adaptive_graph
    path = critical_path(graph)
    total = attribution_total(path)
    # The telescoping identity: attributed seconds == makespan, within
    # float round-off (the acceptance bound is 1%; this is far tighter).
    assert total == pytest.approx(result.finished_at, rel=1e-9)
    rendered = render_critical_path(graph, path)
    assert f"{total:.2f}s attributed" in rendered


def test_late_task_chain_crosses_three_components(adaptive_graph):
    _, graph = adaptive_graph
    last_uid = sorted(graph.task_events)[-1]
    target = resolve_target(graph, last_uid)
    chain = why_chain(graph, target)
    components = chain_components(graph, chain)
    assert len(components) >= 3, components
    assert "entk" in components
    assert "soma-service" in components
    assert any(c.startswith("rp-") for c in components)


def test_capture_closed_after_build(adaptive_graph):
    result, _ = adaptive_graph
    capture = result.session.telemetry.provenance
    assert capture.closed
    before = capture.counters()
    # Offline analysis reads after the graph is built must not append.
    from repro.soma.namespaces import HARDWARE

    result.deployment.store(HARDWARE).records()
    assert capture.counters() == before


def test_bare_hub_yields_span_skeleton(adaptive_graph):
    result, _ = adaptive_graph
    hub = result.session.telemetry
    # A hub that never had a capture attached still yields the span
    # skeleton (build_graph falls back to hub.provenance, so detach it).
    capture = hub.provenance
    hub.provenance = None
    try:
        skeleton = build_graph(result, close=False)
    finally:
        hub.provenance = capture
    assert validate_graph(skeleton) == []
    kinds = skeleton.edge_counts()
    assert kinds.get("span", 0) > 0
    assert "rpc.wire" not in kinds  # capture-derived edges need a capture


def test_raptor_edges_from_function_calls():
    from repro.platform import summit_like
    from repro.rp import Client, PilotDescription, Session
    from repro.rp.raptor import FunctionCall, RaptorMaster

    prev_prov = set_default_provenance(True)
    try:
        session = Session(cluster_spec=summit_like(2), seed=3, telemetry=True)
        client = Client(session)
        env = session.env

        def main(env):
            yield from client.submit_pilot(
                PilotDescription(nodes=1, agent_nodes=1)
            )
            master = RaptorMaster(env)
            client.submit_tasks([master.worker_description(cores=4)])
            yield env.timeout(5.0)
            calls = [FunctionCall(duration=1.0) for _ in range(4)]
            yield from master.map(calls)

        env.run(env.process(main(env)))
    finally:
        set_default_provenance(prev_prov)
        drain_telemetries()
    hub = session.telemetry
    capture = hub.provenance
    assert capture is not None
    assert capture.counters()["raptor_submits"] == 4
    assert capture.counters()["raptor_dispatches"] == 4
    graph = build_graph(hub=hub, capture=capture)
    assert validate_graph(graph) == []
    kinds = graph.edge_counts()
    assert kinds.get("raptor.queue", 0) == 4
    assert kinds.get("raptor.dispatch", 0) > 0
