"""Unit battery for the ProvGraph structure, queries, and validators.

Synthetic-graph tests pin the algorithms (topo order, reachability,
most-constraining walk, telescoping attribution) on graphs small enough
to verify by hand; the validator tests build deliberately broken graphs
and assert each invariant trips on exactly its own failure mode.
"""

from __future__ import annotations

import pytest

from repro.provenance import (
    EDGE_KINDS,
    EVENT_KINDS,
    ProvGraph,
    assert_valid,
    attribution_total,
    chain_components,
    critical_path,
    edge_attribution,
    last_constraint,
    render_critical_path,
    render_why,
    resolve_target,
    validate_graph,
    why_chain,
)
from repro.provenance.query import KIND_PRIORITY


def diamond() -> ProvGraph:
    """root -> (a | b) -> join -> end, with b the slower branch."""
    g = ProvGraph()
    g.root = g.add_event("run.start", 0.0, "run", component="run")
    a = g.add_event("span.start", 1.0, "fast", component="left")
    b = g.add_event("span.start", 5.0, "slow", component="right")
    join = g.add_event("span.end", 6.0, "join", component="right")
    g.end = g.add_event("run.end", 10.0, "run", component="run")
    g.add_edge(g.root, a, "run")
    g.add_edge(g.root, b, "run")
    g.add_edge(a, join, "join")
    g.add_edge(b, join, "span")
    g.add_edge(join, g.end, "run")
    return g


def test_event_and_edge_bookkeeping():
    g = diamond()
    assert len(g) == 5
    assert [e.eid for e in g.events] == [0, 1, 2, 3, 4]
    assert g.event(3).label == "join"
    assert len(g.in_edges(3)) == 2
    assert len(g.out_edges(g.root)) == 2
    assert g.event_counts() == {
        "run.end": 1,
        "run.start": 1,
        "span.end": 1,
        "span.start": 2,
    }
    assert g.edge_counts() == {"join": 1, "run": 3, "span": 1}
    assert sorted(e.label for e in g.by_kind("span.start")) == ["fast", "slow"]


def test_topo_order_and_reachability():
    g = diamond()
    order = g.topo_order()
    assert order is not None
    position = {eid: i for i, eid in enumerate(order)}
    for edge in g.edges:
        assert position[edge.src] < position[edge.dst]
    assert g.reachable_from(g.root) == {0, 1, 2, 3, 4}
    assert g.reachable_from(1) == {1, 3, 4}


def test_cycle_detected():
    g = diamond()
    g.add_edge(g.end, g.root, "run")  # close the loop
    assert g.topo_order() is None
    rules = {v.rule for v in validate_graph(g)}
    assert "acyclic" in rules
    assert "happens-before" in rules  # the back edge also runs backward


def test_last_constraint_prefers_latest_then_kind():
    g = diamond()
    join = g.event(3)
    # b (t=5) is later than a (t=1): b's edge is the constraint.
    edge = last_constraint(g, join)
    assert edge is not None and edge.src == 2
    # Tie at the same source time: the higher-priority kind wins.
    g2 = ProvGraph()
    g2.root = g2.add_event("run.start", 0.0, "run")
    x = g2.add_event("store.write", 3.0, "w")
    y = g2.add_event("span.start", 3.0, "s")
    tgt = g2.add_event("store.read", 4.0, "r")
    g2.add_edge(g2.root, x, "run")
    g2.add_edge(g2.root, y, "run")
    g2.add_edge(y, tgt, "program")
    g2.add_edge(x, tgt, "wait-on-store")
    winner = last_constraint(g2, tgt)
    assert winner is not None and winner.kind == "wait-on-store"
    assert KIND_PRIORITY["wait-on-store"] > KIND_PRIORITY["program"]


def test_why_chain_telescopes_to_makespan():
    g = diamond()
    chain = why_chain(g, g.end)
    assert chain[0].dst == g.end.eid
    assert chain[-1].src == g.root.eid
    assert attribution_total(list(reversed(chain))) == pytest.approx(
        g.end.t - g.root.t
    )
    path = critical_path(g)
    assert [e.kind for e in path] == ["run", "span", "run"]
    shares = edge_attribution(path)
    assert sum(shares.values()) == pytest.approx(10.0)
    assert list(shares) == ["run", "span"]  # sorted by share, largest first


def test_renderers_are_plain_text():
    g = diamond()
    chain = why_chain(g, g.end)
    out = render_why(g, g.end, chain, top=10)
    assert out.startswith("why run (t=10.00")
    assert "components crossed: right" in out
    table = render_critical_path(g, critical_path(g))
    assert "critical path: 3 edge(s), 10.00s attributed of 10.00s" in table
    assert "span" in table and "share" in table


def test_render_why_elides_quiet_hops():
    g = ProvGraph()
    g.root = g.add_event("run.start", 0.0, "run")
    prev = g.root
    for i in range(40):
        nxt = g.add_event("span.start", float(i + 1), f"hop{i}")
        g.add_edge(prev, nxt, "program")
        prev = nxt
    g.end = g.add_event("run.end", 100.0, "run")
    g.add_edge(prev, g.end, "run")
    chain = why_chain(g, g.end)
    out = render_why(g, g.end, chain, top=3)
    assert "quiet hop(s)" in out
    # 3 kept + elision markers + header/footer: far fewer than 41 hops.
    assert len(out.splitlines()) < 15


def test_chain_components_excludes_run_track():
    g = diamond()
    comps = chain_components(g, why_chain(g, g.end))
    assert comps == ["right"]


def test_resolve_target_forms():
    g = ProvGraph()
    g.root = g.add_event("run.start", 0.0, "run")
    s = g.add_event("span.start", 1.0, "rp-client:task:task.000007", ref="12")
    e = g.add_event("span.end", 4.0, "rp-client:task:task.000007", ref="12")
    g.end = g.add_event("run.end", 5.0, "run")
    g.add_edge(g.root, s, "run")
    g.add_edge(s, e, "span")
    g.add_edge(e, g.end, "run")
    g.span_events[12] = (s, e)
    g.task_events["task.000007"] = (s, e)
    assert resolve_target(g, "run") is g.end
    assert resolve_target(g, "task.000007") is e
    assert resolve_target(g, "12") is e
    assert resolve_target(g, "task:task.0000") is e
    assert resolve_target(g, "no-such-thing") is None


def test_validators_pass_on_well_formed_graph():
    g = diamond()
    assert validate_graph(g) == []
    assert_valid(g)


def test_happens_before_violation_detected():
    g = diamond()
    late = g.add_event("span.start", 9.0, "late")
    early = g.add_event("span.end", 2.0, "early")
    g.add_edge(g.root, late, "run")
    g.add_edge(late, early, "program")  # runs backward in time
    g.add_edge(early, g.end, "run")
    violations = validate_graph(g)
    assert [v.rule for v in violations] == ["happens-before"]
    assert "1 edge(s) run backward" in violations[0].detail
    with pytest.raises(ValueError, match="happens-before"):
        assert_valid(g)


def test_orphan_and_multi_root_detected():
    g = diamond()
    g.add_event("span.start", 2.0, "orphan")
    rules = [v.rule for v in validate_graph(g)]
    assert "single-root" in rules
    assert "reachable" in rules


def test_unreachable_task_reported_by_uid():
    g = diamond()
    s = g.add_event("span.start", 1.0, "task:task.000042")
    e = g.add_event("span.end", 2.0, "task:task.000042")
    g.add_edge(s, e, "span")
    g.task_events["task.000042"] = (s, e)
    details = [v.detail for v in validate_graph(g) if v.rule == "reachable"]
    assert any("task.000042" in d for d in details)


def test_violations_mirror_into_sanitizer_registry():
    from repro.sim.sanitizer import drain_spontaneous_findings

    from repro.provenance import report_violations

    g = diamond()
    g.add_event("span.start", 2.0, "orphan")
    violations = validate_graph(g)
    drain_spontaneous_findings()
    report_violations(g, violations)
    findings = drain_spontaneous_findings()
    assert {f.kind for f in findings} == {
        f"provenance-{v.rule}" for v in violations
    }
    assert all(f.time == g.end.t for f in findings)


def test_kind_tables_cover_priorities():
    # Every edge kind the builder can emit has a walk priority, and the
    # taxonomy tuples stay deduplicated (DESIGN.md is generated from them).
    assert set(KIND_PRIORITY) == set(EDGE_KINDS)
    assert len(set(EDGE_KINDS)) == len(EDGE_KINDS)
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
