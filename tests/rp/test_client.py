"""Client-side RP: pilot submission, task feed, wait semantics."""

import pytest

from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    PilotState,
    Session,
    TaskDescription,
    TaskState,
)


@pytest.fixture
def session():
    return Session(cluster_spec=summit_like(4), seed=1)


@pytest.fixture
def client(session):
    return Client(session)


def activate(client, nodes=2, **kwargs):
    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1, **kwargs)
        )
        return pilot

    env = client.session.env
    return env.run(env.process(main(env)))


class TestPilotLifecycle:
    def test_pilot_becomes_active(self, client):
        pilot = activate(client)
        assert pilot.state == PilotState.PMGR_ACTIVE
        assert pilot.active.triggered

    def test_node_partition(self, client):
        pilot = activate(client, nodes=2)
        assert len(pilot.agent_nodes) == 1
        assert len(pilot.compute_nodes) == 2
        assert pilot.service_nodes == []
        assert pilot.agent_node.name == "cn0000"

    def test_bootstrap_takes_time(self, client):
        activate(client)
        env = client.session.env
        cfg = client.session.config
        assert env.now >= cfg.agent_bootstrap_time * 0.5

    def test_cancel_releases_allocation(self, client):
        pilot = activate(client)
        batch = client.session.cluster.batch
        assert batch.free_nodes == 1
        client.close()
        assert batch.free_nodes == 4
        assert pilot.state == PilotState.DONE

    def test_service_node_partition(self, session):
        client = Client(session)
        pilot = activate(client, nodes=1, service_nodes=2)
        assert len(pilot.service_nodes) == 2
        assert len(pilot.compute_nodes) == 1


class TestTaskSubmission:
    def test_submit_before_pilot_raises(self, client):
        with pytest.raises(RuntimeError):
            client.submit_tasks([TaskDescription()])

    def test_tasks_run_to_done(self, client):
        activate(client)
        env = client.session.env

        def main(env):
            tasks = client.submit_tasks(
                [
                    TaskDescription(
                        name=f"t{i}", model=FixedDurationModel(5.0)
                    )
                    for i in range(4)
                ]
            )
            yield from client.wait_tasks(tasks)
            return tasks

        tasks = env.run(env.process(main(env)))
        assert all(t.state == TaskState.DONE for t in tasks)
        assert all(t.execution_time is not None for t in tasks)

    def test_task_event_order_matches_listing1(self, client):
        activate(client)
        env = client.session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(1.0))]
            )
            yield from client.wait_tasks(tasks)
            return tasks[0]

        task = env.run(env.process(main(env)))
        names = [e.name for e in task.events if e.name != "state"]
        assert names == [
            "launch_start",
            "exec_start",
            "rank_start",
            "rank_stop",
            "exec_stop",
            "launch_stop",
        ]
        times = [task.time_of(n) for n in names]
        assert times == sorted(times)

    def test_wait_tasks_with_already_final(self, client):
        activate(client)
        env = client.session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(model=FixedDurationModel(1.0))]
            )
            yield from client.wait_tasks(tasks)
            # Second wait on final tasks returns immediately.
            yield from client.wait_tasks(tasks)
            return True

        assert env.run(env.process(main(env)))

    def test_uids_are_sequential(self, client):
        activate(client)
        tasks = client.submit_tasks(
            [TaskDescription(model=FixedDurationModel(1.0)) for _ in range(3)]
        )
        assert [t.uid for t in tasks] == [
            "task.000000",
            "task.000001",
            "task.000002",
        ]

    def test_failed_task_reaches_failed_state(self, client):
        from repro.rp import FailingModel

        activate(client)
        env = client.session.env

        def main(env):
            tasks = client.submit_tasks(
                [TaskDescription(name="bad", model=FailingModel(1.0))]
            )
            yield from client.wait_tasks(tasks)
            return tasks[0]

        task = env.run(env.process(main(env)))
        assert task.state == TaskState.FAILED
