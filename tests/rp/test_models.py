"""Generic task models: fixed duration, compute, service, failing."""

import pytest

from repro.platform import summit_like
from repro.rp import (
    ComputeModel,
    ExecutionContext,
    FailingModel,
    FixedDurationModel,
    RankProfile,
    Session,
    Task,
    TaskDescription,
    TaskModel,
    TaskResult,
)


def make_ctx(session, cores=4, gpus=0):
    node = session.cluster.nodes[0]
    allocation = node.allocate(cores, gpus, owner="test")
    task = Task(
        session.env, "task.000000", TaskDescription(name="t", ranks=1,
                                                    cores_per_rank=cores)
    )
    return ExecutionContext(
        env=session.env,
        task=task,
        placements=[allocation],
        network=session.cluster.network,
        rng=session.rng,
        session=session,
    )


@pytest.fixture
def session():
    return Session(cluster_spec=summit_like(2), seed=1)


class TestFixedDurationModel:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FixedDurationModel(-1.0)

    def test_cpu_busy_shows_in_meter(self, session):
        ctx = make_ctx(session)
        model = FixedDurationModel(5.0, cpu_busy=True)
        result = session.env.run(session.env.process(model.execute(ctx)))
        assert result.exit_code == 0
        assert ctx.nodes[0].busy_cores.integral == pytest.approx(20.0)

    def test_cpu_idle_variant(self, session):
        ctx = make_ctx(session)
        model = FixedDurationModel(5.0, cpu_busy=False)
        session.env.run(session.env.process(model.execute(ctx)))
        assert ctx.nodes[0].busy_cores.integral == 0.0
        assert session.env.now == pytest.approx(5.0)


class TestComputeModel:
    def test_duration_equals_work_uncontended(self, session):
        ctx = make_ctx(session)
        model = ComputeModel(12.0, mem_intensity=0.4)
        session.env.run(session.env.process(model.execute(ctx)))
        assert session.env.now == pytest.approx(12.0)


class TestFailingModel:
    def test_nonzero_exit(self, session):
        ctx = make_ctx(session)
        result = session.env.run(
            session.env.process(FailingModel(2.0, exit_code=3).execute(ctx))
        )
        assert result.exit_code == 3
        assert session.env.now == pytest.approx(2.0)


class TestBaseModel:
    def test_abstract_execute(self, session):
        ctx = make_ctx(session)
        with pytest.raises(NotImplementedError):
            session.env.run(session.env.process(TaskModel().execute(ctx)))


class TestExecutionContext:
    def test_rank_map_covers_all_ranks(self, session):
        node = session.cluster.nodes[0]
        a1 = node.allocate(4, owner="t")
        a2 = session.cluster.nodes[1].allocate(8, owner="t")
        task = Task(
            session.env,
            "task.000001",
            TaskDescription(ranks=6, cores_per_rank=2),
        )
        ctx = ExecutionContext(
            env=session.env,
            task=task,
            placements=[a1, a2],
            network=session.cluster.network,
            rng=session.rng,
        )
        rank_map = ctx.rank_map()
        assert [r for r, _ in rank_map] == list(range(6))
        assert ctx.ranks_on(a1) == 2  # 4 cores / 2 per rank
        assert ctx.ranks_on(a2) == 4
        assert ctx.num_nodes == 2
        assert ctx.hostnames == ["cn0000", "cn0001"]

    def test_stable_rng_is_deterministic(self, session):
        ctx = make_ctx(session)
        a = ctx.stable_rng().normal()
        b = ctx.stable_rng().normal()
        assert a == b  # fresh generator with the same seed each call

    def test_stable_rng_differs_per_task_name(self, session):
        ctx = make_ctx(session)
        other = Session(cluster_spec=summit_like(2), seed=1)
        assert session.stable_rng("a").normal() != session.stable_rng(
            "b"
        ).normal()
        # Same (seed, tag) across sessions -> same stream.
        assert session.stable_rng("a").normal() == other.stable_rng(
            "a"
        ).normal()

    def test_stable_rng_without_session_falls_back(self, session):
        ctx = make_ctx(session)
        ctx.session = None
        assert ctx.stable_rng() is ctx.rng


class TestResultTypes:
    def test_rank_profile_total(self):
        profile = RankProfile(
            rank=0, hostname="cn0000",
            seconds_by_region={"a": 1.0, "b": 2.0},
        )
        assert profile.total() == 3.0

    def test_task_result_defaults(self):
        result = TaskResult()
        assert result.exit_code == 0
        assert result.rank_profiles == []
        assert result.data == {}
