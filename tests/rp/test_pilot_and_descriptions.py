"""Pilot entity and description validation."""

import pytest

from repro.rp import (
    InvalidTransition,
    Pilot,
    PilotDescription,
    PilotState,
    TaskDescription,
    TaskMode,
)


class TestPilotDescription:
    def test_total_nodes(self):
        pd = PilotDescription(nodes=4, agent_nodes=1, service_nodes=2)
        assert pd.total_nodes == 7

    def test_zero_compute_nodes_rejected(self):
        with pytest.raises(ValueError):
            PilotDescription(nodes=0).validate()

    def test_negative_service_nodes_rejected(self):
        with pytest.raises(ValueError):
            PilotDescription(nodes=1, service_nodes=-1).validate()

    def test_zero_walltime_rejected(self):
        with pytest.raises(ValueError):
            PilotDescription(nodes=1, walltime=0).validate()


class TestPilotEntity:
    def test_state_progression(self, env):
        pilot = Pilot(env, "pilot.0001", PilotDescription(nodes=1))
        pilot.advance(PilotState.PMGR_LAUNCHING_PENDING)
        pilot.advance(PilotState.PMGR_LAUNCHING)
        pilot.advance(PilotState.PMGR_ACTIVE_PENDING)
        pilot.advance(PilotState.PMGR_ACTIVE)
        assert pilot.active.triggered
        pilot.advance(PilotState.DONE)
        assert pilot.completed.triggered
        assert pilot.is_final

    def test_backward_transition_rejected(self, env):
        pilot = Pilot(env, "pilot.0002", PilotDescription(nodes=1))
        pilot.advance(PilotState.PMGR_ACTIVE)
        with pytest.raises(InvalidTransition):
            pilot.advance(PilotState.PMGR_LAUNCHING)

    def test_agent_node_before_activation_raises(self, env):
        pilot = Pilot(env, "pilot.0003", PilotDescription(nodes=1))
        with pytest.raises(RuntimeError):
            _ = pilot.agent_node

    def test_state_history_timestamps(self, env):
        pilot = Pilot(env, "pilot.0004", PilotDescription(nodes=1))
        env.run(until=7)
        pilot.advance(PilotState.PMGR_LAUNCHING)
        assert pilot.state_history[-1] == (7.0, PilotState.PMGR_LAUNCHING)


class TestTaskDescriptionDefaults:
    def test_default_mode_executable(self):
        assert TaskDescription().mode == TaskMode.EXECUTABLE

    def test_metadata_not_shared_between_instances(self):
        a, b = TaskDescription(), TaskDescription()
        a.metadata["k"] = 1
        assert "k" not in b.metadata

    def test_tags_not_shared(self):
        a, b = TaskDescription(), TaskDescription()
        a.tags["node"] = "cn0001"
        assert b.tags == {}

    def test_zero_cores_per_rank_rejected(self):
        with pytest.raises(ValueError):
            TaskDescription(cores_per_rank=0).validate()
