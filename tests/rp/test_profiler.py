"""Profile store: append/read, lock contention, read cap."""

import pytest

from repro.rp import ProfileRecord, ProfileStore


def rec(t, uid="task.000000", event="state", state="NEW"):
    return ProfileRecord(time=t, entity=uid, event=event, state=state)


class TestBasics:
    def test_append_and_snapshot(self, env):
        store = ProfileStore(env)
        store.append(rec(0.0))
        store.append(rec(1.0, event="launch_start"))
        assert len(store) == 2
        assert [r.event for r in store.snapshot()] == ["state", "launch_start"]

    def test_size_bytes(self, env):
        store = ProfileStore(env)
        store.append(rec(0.0))
        assert store.size_bytes > 0

    def test_read_since_cursor(self, env):
        store = ProfileStore(env, read_time_base=0.0, read_time_per_record=0.0)
        for i in range(5):
            store.append(rec(float(i)))

        def reader(env):
            records, cursor = yield from store.read_since(0)
            assert len(records) == 5
            store.append(rec(99.0))
            more, cursor = yield from store.read_since(cursor)
            return [r.time for r in more]

        assert env.run(env.process(reader(env))) == [99.0]


class TestTiming:
    def test_read_time_scales_with_records(self, env):
        store = ProfileStore(
            env, read_time_base=0.0, read_time_per_record=0.01
        )
        for i in range(100):
            store.append(rec(float(i)))

        def reader(env):
            yield from store.read_since(0)
            return env.now

        assert env.run(env.process(reader(env))) == pytest.approx(1.0)

    def test_read_cap_bounds_time(self, env):
        store = ProfileStore(
            env,
            read_time_base=0.0,
            read_time_per_record=0.01,
            read_max_records=10,
        )
        for i in range(100):
            store.append(rec(float(i)))

        def reader(env):
            records, _ = yield from store.read_since(0)
            return env.now, len(records)

        t, n = env.run(env.process(reader(env)))
        assert t == pytest.approx(0.1)  # capped at 10 records
        assert n == 100  # but all records are returned

    def test_writer_blocks_behind_reader(self, env):
        store = ProfileStore(
            env,
            read_time_base=1.0,
            read_time_per_record=0.0,
            write_time=0.0,
        )
        store.append(rec(0.0))
        log = []

        def reader(env):
            yield from store.read_since(0)
            log.append(("read_done", env.now))

        def writer(env):
            yield env.timeout(0.1)
            yield from store.write_locked(rec(5.0))
            log.append(("write_done", env.now))

        env.process(reader(env))
        env.process(writer(env))
        env.run()
        times = dict(log)
        assert times["read_done"] == pytest.approx(1.0)
        # Writer had to wait for the reader's lock hold.
        assert times["write_done"] >= 1.0

    def test_write_locked_pays_write_time(self, env):
        store = ProfileStore(env, write_time=0.25)

        def writer(env):
            yield from store.write_locked(rec(0.0))
            return env.now

        assert env.run(env.process(writer(env))) == pytest.approx(0.25)
        assert store.writes == 1
