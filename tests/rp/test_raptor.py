"""Unit tests for RAPTOR, RP's master/worker function-task subsystem."""

from repro.platform import summit_like
from repro.rp import Client, PilotDescription, Session, TaskState
from repro.rp.raptor import FunctionCall, RaptorMaster


def boot(nodes=1, seed=3):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env
    box = {}

    def main(env):
        box["pilot"] = yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )

    env.run(env.process(main(env)))
    return session, client, box


class TestDispatch:
    def test_map_completes_all_calls_with_fewer_workers(self):
        session, client, box = boot()
        env = session.env
        master = RaptorMaster(env)
        workers = client.submit_tasks(
            [master.worker_description(cores=4, name=f"w{i}") for i in range(2)]
        )

        def main(env):
            calls = [FunctionCall(duration=1.0) for _ in range(6)]
            done = yield from master.map(calls)
            return done

        calls = env.run(env.process(main(env)))
        assert master.num_workers == 2
        assert master.dispatched == 6
        assert master.completed == 6
        assert master.backlog == 0
        assert all(c.finished_at is not None for c in calls)
        assert all(c.finished_at >= c.submitted_at for c in calls)
        client.close()
        env.run()  # drain the shutdown interrupts
        assert all(w.state == TaskState.DONE for w in workers)

    def test_backlog_queues_when_workers_are_busy(self):
        session, client, box = boot()
        env = session.env
        master = RaptorMaster(env)
        client.submit_tasks([master.worker_description(cores=2)])

        def main(env):
            # Give the single worker time to register.
            yield env.timeout(5.0)
            events = [
                master.submit(FunctionCall(duration=2.0)) for _ in range(3)
            ]
            # One call dispatched immediately, the rest queue.
            assert master.dispatched == 1
            assert master.backlog == 2
            for event in events:
                yield event
            return events

        env.run(env.process(main(env)))
        assert master.backlog == 0
        assert master.completed == 3
        client.close()

    def test_fifo_completion_on_a_single_worker(self):
        session, client, box = boot()
        env = session.env
        master = RaptorMaster(env)
        client.submit_tasks([master.worker_description(cores=2)])

        def main(env):
            calls = [FunctionCall(duration=0.5) for _ in range(4)]
            done = yield from master.map(calls)
            return done

        calls = env.run(env.process(main(env)))
        finishes = [c.finished_at for c in calls]
        assert finishes == sorted(finishes)
        assert finishes[0] < finishes[-1]  # sequential, not batched
        client.close()

    def test_callable_results_are_plumbed_back(self):
        session, client, box = boot()
        env = session.env
        master = RaptorMaster(env)
        client.submit_tasks([master.worker_description()])

        def main(env):
            calls = [
                FunctionCall(duration=0.1, fn=lambda i=i: i * i)
                for i in range(5)
            ]
            done = yield from master.map(calls)
            return done

        calls = env.run(env.process(main(env)))
        assert [c.result for c in calls] == [0, 1, 4, 9, 16]
        client.close()

    def test_worker_reuse_amortizes_launch_overhead(self):
        """Many short calls ride two launched worker tasks — the point
        of RAPTOR (Sec 2.1): function tasks skip per-task launch."""
        session, client, box = boot()
        env = session.env
        master = RaptorMaster(env)
        client.submit_tasks(
            [master.worker_description(name=f"w{i}") for i in range(2)]
        )

        def main(env):
            calls = [FunctionCall(duration=0.2) for _ in range(20)]
            yield from master.map(calls)

        env.run(env.process(main(env)))
        assert master.completed == 20
        assert master.num_workers == 2  # no extra tasks were launched
        client.close()
