"""Agent scheduler: placement invariants, pinning, sharing policy."""


from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
    TaskMode,
    TaskState,
)


def run_pilot_with_tasks(
    descriptions,
    nodes=2,
    service_nodes=0,
    share=False,
    cluster_nodes=8,
    seed=1,
):
    session = Session(cluster_spec=summit_like(cluster_nodes), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(
                nodes=nodes,
                agent_nodes=1,
                service_nodes=service_nodes,
                share_service_nodes=share,
            )
        )
        tasks = client.submit_tasks(descriptions)
        app = [t for t in tasks if t.is_application]
        yield from client.wait_tasks(app)
        return pilot, tasks

    pilot, tasks = env.run(env.process(main(env)))
    client.close()
    return session, client, pilot, tasks


class TestPlacementInvariants:
    def test_no_core_oversubscription(self):
        # 5 tasks x 20 cores on 2 nodes (84 cores): must serialize.
        descriptions = [
            TaskDescription(
                name=f"t{i}", model=FixedDurationModel(10.0), ranks=20
            )
            for i in range(5)
        ]
        session, client, pilot, tasks = run_pilot_with_tasks(descriptions)
        # Reconstruct concurrent core usage from alloc/free traces.
        events = []
        for rec in session.tracer.select(category="rp.alloc"):
            task = client.task_manager.tasks[rec.name]
            start = task.time_of("AGENT_EXECUTING")
            stop = task.time_of("launch_stop")
            events.append((start, +len(rec.get("cores"))))
            events.append((stop, -len(rec.get("cores"))))
        events.sort()
        load, peak = 0, 0
        for _, delta in events:
            load += delta
            peak = max(peak, load)
        assert peak <= 2 * 42

    def test_single_node_task_never_spans(self):
        descriptions = [
            TaskDescription(
                name="gpu-task",
                model=FixedDurationModel(5.0),
                ranks=1,
                cores_per_rank=4,
                gpus_per_rank=1,
                multi_node=False,
            )
        ]
        _, _, _, tasks = run_pilot_with_tasks(descriptions)
        assert len(tasks[0].nodelist) == 1

    def test_multi_node_task_spans_when_needed(self):
        descriptions = [
            TaskDescription(
                name="big", model=FixedDurationModel(5.0), ranks=60
            )
        ]
        _, _, _, tasks = run_pilot_with_tasks(descriptions)
        assert len(tasks[0].nodelist) == 2

    def test_unschedulable_task_fails(self):
        descriptions = [
            TaskDescription(
                name="toobig",
                model=FixedDurationModel(5.0),
                ranks=1,
                cores_per_rank=43,  # more than any node has
                multi_node=False,
            ),
            TaskDescription(name="ok", model=FixedDurationModel(1.0)),
        ]
        _, _, _, tasks = run_pilot_with_tasks(descriptions)
        by_name = {t.description.name: t for t in tasks}
        assert by_name["toobig"].state == TaskState.FAILED
        assert by_name["ok"].state == TaskState.DONE


class TestPinningAndPolicy:
    def test_node_tag_pins_task(self):
        descriptions = [
            TaskDescription(
                name="pinned",
                model=FixedDurationModel(2.0),
                tags={"node": "cn0002"},
            )
        ]
        _, _, _, tasks = run_pilot_with_tasks(descriptions)
        assert tasks[0].nodelist == ["cn0002"]

    def test_colocate_agent_tag(self):
        descriptions = [
            TaskDescription(
                name="agent-side",
                model=FixedDurationModel(2.0),
                tags={"colocate": "agent"},
                mode=TaskMode.MONITOR,
            ),
            TaskDescription(name="app", model=FixedDurationModel(2.0)),
        ]
        session, client, pilot, tasks = run_pilot_with_tasks(descriptions)
        by_name = {t.description.name: t for t in tasks}
        assert by_name["agent-side"].nodelist == [pilot.agent_node.name]
        # Application tasks never land on the agent node.
        assert pilot.agent_node.name not in by_name["app"].nodelist

    def test_exclusive_mode_keeps_apps_off_service_nodes(self):
        descriptions = [
            TaskDescription(
                name=f"app{i}", model=FixedDurationModel(2.0), ranks=30
            )
            for i in range(4)
        ]
        _, client, pilot, tasks = run_pilot_with_tasks(
            descriptions, nodes=2, service_nodes=1, share=False
        )
        service_names = {n.name for n in pilot.service_nodes}
        for task in tasks:
            assert not set(task.nodelist) & service_names

    def test_shared_mode_allows_service_nodes(self):
        # Overload the 1 compute node so spill-over must happen.
        descriptions = [
            TaskDescription(
                name=f"app{i}", model=FixedDurationModel(3.0), ranks=30
            )
            for i in range(4)
        ]
        _, client, pilot, tasks = run_pilot_with_tasks(
            descriptions, nodes=1, service_nodes=1, share=True
        )
        service_names = {n.name for n in pilot.service_nodes}
        touched = set()
        for task in tasks:
            touched |= set(task.nodelist)
        assert touched & service_names
