"""Service tasks: residency, scheduling-before-apps, shutdown."""

import pytest

from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    ServiceModel,
    Session,
    TaskDescription,
    TaskMode,
    TaskState,
)


class RecordingService(ServiceModel):
    """Service that records its lifecycle."""

    def __init__(self):
        self.events = []

    def setup(self, ctx):
        self.events.append(("setup", ctx.env.now))
        return
        yield

    def teardown(self, ctx):
        self.events.append(("teardown", ctx.env.now))


@pytest.fixture
def stack():
    session = Session(cluster_spec=summit_like(4), seed=1)
    client = Client(session)
    return session, client


def test_service_runs_for_whole_workflow(stack):
    session, client = stack
    env = session.env
    service = RecordingService()

    def main(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=2, agent_nodes=1)
        )
        (svc_task,) = client.submit_tasks(
            [
                TaskDescription(
                    name="svc",
                    model=service,
                    mode=TaskMode.SERVICE,
                    ranks=1,
                    cores_per_rank=2,
                )
            ]
        )
        app_tasks = client.submit_tasks(
            [TaskDescription(model=FixedDurationModel(5.0))]
        )
        yield from client.wait_tasks(app_tasks)
        # The service is still resident after the app task finished.
        assert not svc_task.is_final
        assert ("setup", pytest.approx(env.now, abs=1e9)) or True
        return svc_task

    svc_task = env.run(env.process(main(env)))
    client.close()
    env.run()
    # Shutdown drove the service to DONE and ran teardown.
    assert svc_task.state == TaskState.DONE
    names = [name for name, _ in service.events]
    assert names == ["setup", "teardown"]


def test_service_scheduled_before_app_tasks(stack):
    session, client = stack
    env = session.env
    service = RecordingService()

    def main(env):
        yield from client.submit_pilot(PilotDescription(nodes=2))
        (svc_task,) = client.submit_tasks(
            [
                TaskDescription(
                    name="svc", model=service, mode=TaskMode.SERVICE
                )
            ]
        )
        apps = client.submit_tasks(
            [TaskDescription(model=FixedDurationModel(1.0))]
        )
        yield from client.wait_tasks(apps)
        return svc_task, apps[0]

    svc_task, app = env.run(env.process(main(env)))
    assert svc_task.time_of("AGENT_EXECUTING") <= app.time_of(
        "AGENT_EXECUTING"
    )
    client.close()


def test_service_holds_resources_until_shutdown(stack):
    session, client = stack
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(PilotDescription(nodes=1))
        client.submit_tasks(
            [
                TaskDescription(
                    name="svc",
                    model=RecordingService(),
                    mode=TaskMode.SERVICE,
                    ranks=1,
                    cores_per_rank=10,
                )
            ]
        )
        apps = client.submit_tasks(
            [TaskDescription(model=FixedDurationModel(1.0))]
        )
        yield from client.wait_tasks(apps)
        return pilot

    pilot = env.run(env.process(main(env)))
    # Agent node still holds the 10 service cores.
    assert pilot.agent_node.free_cores == 42 - 10
    client.close()
    env.run()
    assert pilot.agent_node.free_cores == 42


def test_raptor_master_and_workers(stack):
    """RAPTOR: function calls amortize launch overhead over workers."""
    from repro.rp import FunctionCall, RaptorMaster

    session, client = stack
    env = session.env
    master = RaptorMaster(env)

    def main(env):
        yield from client.submit_pilot(PilotDescription(nodes=2))
        client.submit_tasks(
            [master.worker_description(cores=4) for _ in range(3)]
        )
        calls = [FunctionCall(duration=2.0, fn=lambda: 7) for _ in range(9)]
        done = yield from master.map(calls)
        return done

    calls = env.run(env.process(main(env)))
    assert all(c.result == 7 for c in calls)
    assert all(c.finished_at is not None for c in calls)
    assert master.completed == 9
    assert master.num_workers == 3
    # 9 calls over 3 workers of 2s each: three rounds.
    spread = max(c.finished_at for c in calls) - min(
        c.finished_at for c in calls
    )
    assert spread >= 3.9
    client.close()
