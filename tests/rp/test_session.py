"""Session: uids, jitter, stable RNG, wiring."""


from repro.platform import summit_like
from repro.rp import RPConfig, Session


def test_uid_sequences_are_per_prefix():
    session = Session(cluster_spec=summit_like(2))
    assert session.new_uid("task") == "task.000000"
    assert session.new_uid("task") == "task.000001"
    assert session.new_uid("pilot") == "pilot.0000"
    assert session.new_uid("task") == "task.000002"


def test_jitter_bounds():
    session = Session(cluster_spec=summit_like(2), seed=0)
    nominal = 10.0
    j = session.config.overhead_jitter
    for _ in range(200):
        value = session.jitter(nominal)
        assert nominal * (1 - j) <= value <= nominal * (1 + j)


def test_jitter_disabled():
    session = Session(
        cluster_spec=summit_like(2),
        config=RPConfig(overhead_jitter=0.0),
    )
    assert session.jitter(5.0) == 5.0


def test_stable_rng_reproducible_across_sessions():
    a = Session(cluster_spec=summit_like(2), seed=7)
    b = Session(cluster_spec=summit_like(2), seed=7)
    assert a.stable_rng("x").normal() == b.stable_rng("x").normal()


def test_stable_rng_seed_sensitivity():
    a = Session(cluster_spec=summit_like(2), seed=7)
    b = Session(cluster_spec=summit_like(2), seed=8)
    assert a.stable_rng("x").normal() != b.stable_rng("x").normal()


def test_profile_store_configured_from_config():
    config = RPConfig(
        profile_read_per_record=1e-3, profile_read_max_records=123
    )
    session = Session(cluster_spec=summit_like(2), config=config)
    assert session.profiles.read_time_per_record == 1e-3
    assert session.profiles.read_max_records == 123


def test_session_owns_distinct_components():
    session = Session(cluster_spec=summit_like(2))
    assert session.cluster.env is session.env
    assert session.tracer.env is session.env
    assert session.rpc_registry.env is session.env
