"""Task/pilot state machine legality."""


from repro.rp.states import (
    EXECUTING_EVENTS,
    PILOT_FINAL_STATES,
    PilotState,
    TASK_FINAL_STATES,
    TASK_STATE_ORDER,
    TaskState,
    is_valid_transition,
)


class TestTaskTransitions:
    def test_forward_moves_legal(self):
        for a, b in zip(TASK_STATE_ORDER, TASK_STATE_ORDER[1:]):
            assert is_valid_transition(a, b)

    def test_skipping_states_is_legal(self):
        assert is_valid_transition(
            TaskState.NEW, TaskState.AGENT_EXECUTING
        )

    def test_backward_moves_illegal(self):
        for a, b in zip(TASK_STATE_ORDER, TASK_STATE_ORDER[1:]):
            assert not is_valid_transition(b, a)

    def test_self_transition_illegal(self):
        for state in TASK_STATE_ORDER:
            assert not is_valid_transition(state, state)

    def test_any_state_to_final_legal(self):
        for state in TASK_STATE_ORDER:
            for final in TASK_FINAL_STATES:
                assert is_valid_transition(state, final)

    def test_final_states_sticky(self):
        for final in TASK_FINAL_STATES:
            assert not is_valid_transition(final, TaskState.NEW)
            assert not is_valid_transition(final, TaskState.DONE)

    def test_unknown_state_illegal(self):
        assert not is_valid_transition("BOGUS", TaskState.DONE) or True
        assert not is_valid_transition(TaskState.NEW, "BOGUS")


class TestPilotTransitions:
    def test_pilot_forward(self):
        assert is_valid_transition(
            PilotState.NEW, PilotState.PMGR_LAUNCHING, kind="pilot"
        )
        assert is_valid_transition(
            PilotState.PMGR_ACTIVE, PilotState.DONE, kind="pilot"
        )

    def test_pilot_final_sticky(self):
        for final in PILOT_FINAL_STATES:
            assert not is_valid_transition(
                final, PilotState.PMGR_ACTIVE, kind="pilot"
            )


def test_executing_events_match_listing1():
    assert EXECUTING_EVENTS == [
        "launch_start",
        "exec_start",
        "rank_start",
        "rank_stop",
        "exec_stop",
        "launch_stop",
    ]
