"""Task entity: event history, durations, state machine enforcement."""

import pytest

from repro.rp import InvalidTransition, Task, TaskDescription, TaskState


@pytest.fixture
def task(env):
    return Task(env, "task.000000", TaskDescription(name="t"))


class TestAdvance:
    def test_initial_state(self, task):
        assert task.state == TaskState.NEW
        assert not task.is_final

    def test_advance_records_event(self, env, task):
        env.run(until=5)
        task.advance(TaskState.TMGR_SCHEDULING)
        assert task.state == TaskState.TMGR_SCHEDULING
        assert task.time_of(TaskState.TMGR_SCHEDULING) == 5.0

    def test_illegal_transition_raises(self, task):
        task.advance(TaskState.AGENT_SCHEDULING)
        with pytest.raises(InvalidTransition):
            task.advance(TaskState.TMGR_SCHEDULING)

    def test_final_state_fires_completed(self, env, task):
        task.advance(TaskState.DONE)
        assert task.completed.triggered
        assert task.finished_at == env.now
        assert task.is_final

    def test_advance_after_final_raises(self, task):
        task.advance(TaskState.DONE)
        with pytest.raises(InvalidTransition):
            task.advance(TaskState.FAILED)

    def test_started_at_set_on_executing(self, env, task):
        env.run(until=3)
        task.advance(TaskState.AGENT_EXECUTING)
        assert task.started_at == 3.0


class TestEventHistory:
    def test_record_event(self, env, task):
        env.run(until=2)
        task.record_event("launch_start")
        assert task.time_of("launch_start") == 2.0

    def test_duration_between_events(self, env, task):
        task.record_event("launch_start")
        env.run(until=7)
        task.record_event("launch_stop")
        assert task.execution_time == pytest.approx(7.0)

    def test_duration_missing_event_is_none(self, task):
        assert task.duration("launch_start", "launch_stop") is None

    def test_state_durations(self, env, task):
        task.advance(TaskState.TMGR_SCHEDULING)
        env.run(until=4)
        task.advance(TaskState.AGENT_SCHEDULING)
        env.run(until=10)
        task.advance(TaskState.DONE)
        durations = task.state_durations()
        assert durations[TaskState.TMGR_SCHEDULING] == pytest.approx(4.0)
        assert durations[TaskState.AGENT_SCHEDULING] == pytest.approx(6.0)
        assert durations[TaskState.DONE] == 0.0


class TestClassification:
    def test_application_task(self, task):
        assert task.is_application
        assert not task.is_service

    def test_service_task(self, env):
        from repro.rp import TaskMode

        td = TaskDescription(name="svc", mode=TaskMode.SERVICE)
        t = Task(env, "task.000001", td)
        assert t.is_service and not t.is_application

    def test_monitor_task(self, env):
        from repro.rp import TaskMode

        td = TaskDescription(name="mon", mode=TaskMode.MONITOR)
        t = Task(env, "task.000002", td)
        assert t.is_monitor


class TestDescriptionValidation:
    def test_zero_ranks_rejected(self, env):
        with pytest.raises(ValueError):
            Task(env, "t", TaskDescription(ranks=0))

    def test_negative_gpus_rejected(self, env):
        with pytest.raises(ValueError):
            Task(env, "t", TaskDescription(gpus_per_rank=-1))

    def test_bad_mode_rejected(self, env):
        with pytest.raises(ValueError):
            Task(env, "t", TaskDescription(mode="weird"))

    def test_totals(self):
        td = TaskDescription(ranks=4, cores_per_rank=3, gpus_per_rank=1)
        assert td.total_cores == 12
        assert td.total_gpus == 4
