"""CFG-builder battery: whole edge sets against hand-drawn graphs.

Each case lowers one function and compares ``cfg.edges()`` — the
complete ``(src_label, dst_label, kind)`` set — against a graph drawn
by hand from the language semantics.  Asserting the *entire* set (not
just presence of a few edges) pins both what the builder must produce
and what it must not.
"""

import ast
import textwrap

from repro.sanitize.flow import build_cfg, solve_forward
from repro.sanitize.flow.cfg import stmt_has_yield


def cfg_for(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def test_straight_line_with_branch():
    cfg = cfg_for(
        """
        def f(x):
            a = 1
            if x:
                a = 2
            return a
        """
    )
    assert cfg.edges() == {
        ("entry", "stmt@3", "next"),
        ("stmt@3", "cond@4", "next"),
        ("cond@4", "stmt@5", "true"),
        ("stmt@5", "stmt@6", "next"),
        ("cond@4", "stmt@6", "false"),
        ("stmt@6", "exit", "return"),
    }


def test_generator_return_ends_the_process_early():
    # `return` in a generator raises StopIteration at the kernel: the
    # second yield must be reachable only on the false branch.
    cfg = cfg_for(
        """
        def f(env):
            yield env.timeout(1)
            if env.now > 5:
                return
            yield env.timeout(2)
        """
    )
    assert cfg.edges() == {
        ("entry", "yield@3", "next"),
        ("yield@3", "cond@4", "next"),
        ("yield@3", "raise", "exc"),  # Interrupt thrown at the park
        ("cond@4", "stmt@5", "true"),
        ("stmt@5", "exit", "return"),
        ("cond@4", "yield@6", "false"),
        ("yield@6", "exit", "next"),
        ("yield@6", "raise", "exc"),
    }


def test_nested_try_finally_with_yield_threads_both_cleanups():
    # Both the normal path and the Interrupt path out of the yield must
    # run the inner finally, then the outer finally.
    cfg = cfg_for(
        """
        def f(env, res):
            try:
                try:
                    yield env.timeout(1)
                finally:
                    res.release(1)
            finally:
                res.release(2)
        """
    )
    assert cfg.edges() == {
        ("entry", "yield@5", "next"),
        ("yield@5", "final@7", "next"),
        ("yield@5", "final@7", "exc"),  # interrupt unwinds through it too
        ("final@7", "stmt@7", "next"),
        ("stmt@7", "final@9", "next"),
        ("stmt@7", "final@9", "exc"),
        ("final@9", "stmt@9", "next"),
        ("stmt@9", "exit", "next"),
        ("stmt@9", "raise", "exc"),  # the re-raised Interrupt leaves
    }


def test_with_unwinds_through_exit_on_interrupt():
    # An Interrupt at the yield must still pass through __exit__ (the
    # withexit node) before propagating — that is what makes
    # `with resource.request()` leak-free under cancellation.
    cfg = cfg_for(
        """
        def f(env, res):
            with res.request() as req:
                yield req
        """
    )
    assert cfg.edges() == {
        ("entry", "with@3", "next"),
        ("with@3", "yield@4", "next"),
        ("yield@4", "withexit@3", "next"),
        ("yield@4", "withexit@3", "exc"),
        ("withexit@3", "exit", "next"),
        ("withexit@3", "raise", "exc"),
    }


def test_loop_else_runs_only_without_break():
    cfg = cfg_for(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
            else:
                return 0
            return 1
        """
    )
    assert cfg.edges() == {
        ("entry", "loop@3", "next"),
        ("loop@3", "cond@4", "true"),
        ("cond@4", "stmt@5", "true"),  # the break statement
        ("cond@4", "loop@3", "back"),  # if fall-through re-tests the loop
        ("stmt@5", "stmt@8", "break"),  # break skips the else clause
        ("loop@3", "stmt@7", "false"),  # exhaustion runs the else
        ("stmt@7", "exit", "return"),
        ("stmt@8", "exit", "return"),
    }


def test_handler_paths_split_on_isinstance():
    cfg = cfg_for(
        """
        def f(env):
            try:
                yield env.timeout(1)
            except Exception as e:
                if isinstance(e, Interrupt):
                    raise
                env.log()
        """
    )
    assert cfg.edges() == {
        ("entry", "yield@4", "next"),
        ("yield@4", "exit", "next"),
        ("yield@4", "except@5", "exc"),
        ("except@5", "cond@6", "next"),
        ("cond@6", "stmt@7", "true"),
        ("stmt@7", "raise", "raise"),  # bare raise re-raises out
        ("cond@6", "stmt@8", "false"),
        ("stmt@8", "exit", "next"),
    }


def test_while_true_has_no_false_exit():
    cfg = cfg_for(
        """
        def f(env):
            while True:
                yield env.timeout(1)
        """
    )
    assert cfg.edges() == {
        ("entry", "cond@3", "next"),
        ("cond@3", "yield@4", "true"),
        ("yield@4", "cond@3", "back"),
        ("yield@4", "raise", "exc"),
    }
    # exit is unreachable: no edge targets it
    assert all(dst != "exit" for _src, dst, _kind in cfg.edges())


def test_stmt_has_yield_spots_nested_expressions():
    stmt = ast.parse("x = (yield ev) + 1").body[0]
    assert stmt_has_yield(stmt)
    plain = ast.parse("x = f() + 1").body[0]
    assert not stmt_has_yield(plain)
    # yields inside a nested def do not suspend *this* function
    nested = ast.parse("def g():\n    yield 1").body[0]
    assert not stmt_has_yield(nested)


def test_solver_reaches_fixpoint_on_a_loop():
    # Reaching-lines analysis over a loop: the back edge must feed the
    # loop header until the line set stabilizes.
    cfg = cfg_for(
        """
        def f(xs):
            total = 0
            for x in xs:
                total = total + x
            return total
        """
    )
    states = solve_forward(
        cfg,
        init=frozenset(),
        transfer=lambda node, s: s | {node.line} if node.line else s,
        join=lambda a, b: a | b,
    )
    # the return's entry state has seen both the init and the loop body
    return_node = next(
        n for n in cfg.nodes if n.stmt is not None and n.line == 5
    )
    assert {3, 4} <= states[return_node.index]


def test_solver_edge_transfer_kills_paths():
    cfg = cfg_for(
        """
        def f(x):
            if x:
                return 1
            return 2
        """
    )
    # Kill the true edge: the `return 1` node must become unreachable.
    states = solve_forward(
        cfg,
        init=frozenset(),
        transfer=lambda node, s: s,
        join=lambda a, b: a | b,
        edge_transfer=lambda node, out, kind: None if kind == "true" else out,
    )
    reachable_lines = {cfg.nodes[i].line for i in states}
    assert 4 not in reachable_lines  # return 1 is on line 4
    assert 5 in reachable_lines
