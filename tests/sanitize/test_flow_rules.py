"""Flow-rule battery: fixture corpus, interprocedural cases, baselines.

The corpus in ``fixtures/flow/`` holds ``.py.bad`` files (each with an
``# expect: RULE@line`` header naming every finding the flow analysis
must produce, exactly) and ``.py.ok`` near-miss files that must come
back completely clean.  The extensions keep the fixtures invisible to
pytest collection, ruff, and the lint gate's ``*.py`` walk.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.sanitize import simlint

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
BAD = sorted(FIXTURES.glob("*.py.bad"))
OK = sorted(FIXTURES.glob("*.py.ok"))

_EXPECT_RE = re.compile(r"#\s*expect:\s*(.+)$", re.MULTILINE)


def flow_findings(source: str, path: str = "<fixture>"):
    findings = simlint.lint_source(source, path, flow=True)
    return sorted(
        (f.rule.id, f.line) for f in findings if not f.suppressed
    )


def expected_findings(source: str):
    match = _EXPECT_RE.search(source)
    assert match, "known-bad fixture is missing its `# expect:` header"
    out = []
    for item in match.group(1).split(","):
        rule_id, line = item.strip().split("@")
        out.append((rule_id, int(line)))
    return sorted(out)


def test_fixture_corpus_is_complete():
    # ≥2 known-bad and ≥2 near-miss fixtures per flow rule.
    for rule_id in ("SL100", "SL101", "SL102", "SL103"):
        bad_hits = sum(
            1 for p in BAD for f in expected_findings(p.read_text())
            if f[0] == rule_id
        )
        ok_files = [p for p in OK if p.name.startswith(rule_id.lower())]
        assert bad_hits >= 2, f"{rule_id}: needs >=2 known-bad findings"
        assert len(ok_files) >= 2, f"{rule_id}: needs >=2 near-miss files"


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.name)
def test_known_bad_fixtures_flag_exactly_as_annotated(path):
    source = path.read_text()
    assert flow_findings(source, str(path)) == expected_findings(source)


@pytest.mark.parametrize("path", OK, ids=lambda p: p.name)
def test_near_miss_fixtures_stay_clean(path):
    source = path.read_text()
    assert flow_findings(source, str(path)) == []


# -- interprocedural, across files -----------------------------------------


def test_taint_follows_returns_across_files(tmp_path):
    (tmp_path / "clocks.py").write_text(
        textwrap.dedent(
            """
            import time

            def stamp():
                return time.perf_counter()
            """
        )
    )
    (tmp_path / "proc.py").write_text(
        textwrap.dedent(
            """
            from clocks import stamp

            def run(env):
                yield env.timeout(stamp())
            """
        )
    )
    report = simlint.lint_paths([str(tmp_path)], flow=True)
    hits = [f for f in report.findings if f.rule.id == "SL100"]
    assert len(hits) == 1
    assert hits[0].path.endswith("proc.py")
    assert "time.perf_counter" in hits[0].message


def test_flow_mode_replaces_syntactic_source_rules():
    source = textwrap.dedent(
        """
        import time

        def bench():
            return time.time()
        """
    )
    base_ids = {f.rule.id for f in simlint.lint_source(source)}
    flow_ids = {f.rule.id for f in simlint.lint_source(source, flow=True)}
    assert "SL001" in base_ids  # syntactic occurrence rule fires
    assert flow_ids == set()  # value never reaches a sink


def test_flow_findings_are_suppressible():
    source = textwrap.dedent(
        """
        import time

        def proc(env):
            delay = time.time()
            yield env.timeout(delay)  # simlint: disable=SL100(fixture)
        """
    )
    findings = simlint.lint_source(source, flow=True)
    assert [f.rule.id for f in findings] == ["SL100"]
    assert findings[0].suppressed
    assert findings[0].justification == "fixture"


# -- base-rule precision fixes ---------------------------------------------


def findings_for(source: str):
    return [
        (f.rule.id, f.line)
        for f in simlint.lint_source(textwrap.dedent(source))
    ]


def test_seeded_random_instance_is_clean():
    assert (
        findings_for(
            """
            import random

            rng = random.Random(1234)
            """
        )
        == []
    )


def test_unseeded_random_instance_still_flagged():
    found = findings_for(
        """
        import random

        rng = random.Random()
        """
    )
    assert [rule for rule, _line in found] == ["SL003"]


def test_set_comprehension_into_order_insensitive_sink_is_clean():
    assert (
        findings_for(
            """
            total = sum(x for x in {1, 2, 3})
            bound = max(len(str(x)) for x in {4, 5})
            ordered = sorted(x * 2 for x in {6, 7})
            """
        )
        == []
    )


def test_set_comprehension_into_ordered_sink_still_flagged():
    found = findings_for(
        """
        materialized = list(x for x in {1, 2, 3})
        """
    )
    assert [rule for rule, _line in found] == ["SL005"]


def test_request_assigned_then_with_is_clean():
    assert (
        findings_for(
            """
            def proc(env, resource):
                request = resource.request()
                with request as req:
                    yield req
            """
        )
        == []
    )


# -- baselines --------------------------------------------------------------


def _tree_with_finding(tmp_path):
    target = tmp_path / "proc.py"
    target.write_text(
        textwrap.dedent(
            """
            import time

            def proc(env):
                yield env.timeout(time.time())
            """
        )
    )
    return target


def test_baseline_roundtrip_masks_old_findings(tmp_path):
    _tree_with_finding(tmp_path)
    baseline = tmp_path / "lint-baseline.json"

    report = simlint.lint_paths([str(tmp_path)], flow=True)
    assert len(report.new) == 1
    written = simlint.write_baseline(report, str(baseline))
    assert written == 1
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1

    # Same tree, baseline applied: the finding no longer gates.
    report = simlint.lint_paths([str(tmp_path)], flow=True)
    simlint.apply_baseline(report, str(baseline))
    assert report.new == []
    assert len(report.unsuppressed) == 1  # still reported, just baselined


def test_new_findings_still_gate_with_a_baseline(tmp_path):
    target = _tree_with_finding(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    report = simlint.lint_paths([str(tmp_path)], flow=True)
    simlint.write_baseline(report, str(baseline))

    # Introduce a second, different finding.
    target.write_text(
        target.read_text()
        + textwrap.dedent(
            """
            import random

            def jitter(env):
                yield env.timeout(random.random())
            """
        )
    )
    report = simlint.lint_paths([str(tmp_path)], flow=True)
    simlint.apply_baseline(report, str(baseline))
    assert len(report.new) == 1
    assert "random.random" in report.new[0].message


def test_baseline_cli_flags(tmp_path, capfd):
    from repro.cli import main as cli_main

    _tree_with_finding(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        cli_main(
            [
                "lint", str(tmp_path), "--flow",
                "--baseline", str(baseline), "--write-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    assert (
        cli_main(
            ["lint", str(tmp_path), "--flow", "--baseline", str(baseline)]
        )
        == 0
    )
    out = capfd.readouterr().out
    assert "baselined" in out


def test_flow_gate_is_clean_tree_wide():
    # The CI lint-flow job's contract, asserted from the suite as well:
    # src, tests, and benchmarks produce no unsuppressed flow findings.
    root = Path(__file__).resolve().parents[2]
    paths = [
        str(root / name)
        for name in ("src", "tests", "benchmarks")
        if (root / name).is_dir()
    ]
    report = simlint.lint_paths(paths, flow=True)
    assert [f.format() for f in report.new] == []
    for finding in report.suppressed:
        assert finding.justification, finding.format()
