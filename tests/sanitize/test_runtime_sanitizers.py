"""Runtime kernel sanitizers: each detector fires on a deliberately
broken fixture process and names both the process and the source line
that created the hazard.

Line numbers are derived from ``inspect`` at runtime so the assertions
survive edits to this file.
"""

from __future__ import annotations

import inspect

import pytest

from repro.sim import (
    Environment,
    Resource,
    SanitizerError,
    SharedDict,
    drain_spontaneous_findings,
)

def source_span(func) -> range:
    """Inclusive line range of ``func``'s source in this file."""
    lines, start = inspect.getsourcelines(func)
    return range(start, start + len(lines))


def assert_site_in(finding, func) -> None:
    assert finding.site is not None, finding.format()
    path, _, lineno = finding.site.rpartition(":")
    assert path.endswith("test_runtime_sanitizers.py"), finding.site
    assert int(lineno) in source_span(func), (
        f"{finding.site} not within {func.__name__} "
        f"(lines {source_span(func)})"
    )


# -- event leak -------------------------------------------------------------


def test_event_leak_names_process_and_line():
    env = Environment(sanitize=True)

    def leaky(env):
        env.timeout(1000)  # simlint: disable=SL010(deliberate leak fixture the runtime sanitizer must catch)
        yield env.timeout(1)

    env.process(leaky(env), name="leaky")
    env.run(until=10)

    findings = env.sanitize_check(strict=False)
    leaks = [f for f in findings if f.kind == "event-leak"]
    assert len(leaks) == 1
    assert leaks[0].process == "leaky"
    assert "Timeout" in leaks[0].detail
    assert_site_in(leaks[0], test_event_leak_names_process_and_line)


def test_clean_run_has_no_findings():
    env = Environment(sanitize=True)

    def fine(env):
        yield env.timeout(5)

    env.process(fine(env), name="fine")
    env.run()
    assert env.sanitize_check(strict=True) == []


def test_strict_check_raises():
    env = Environment(sanitize=True)

    def leaky(env):
        env.timeout(1000)  # simlint: disable=SL010(deliberate leak fixture the runtime sanitizer must catch)
        yield env.timeout(1)

    env.process(leaky(env), name="leaky")
    env.run(until=10)
    with pytest.raises(SanitizerError) as err:
        env.sanitize_check()
    assert "event-leak" in str(err.value)
    assert "leaky" in str(err.value)


def test_cancelled_event_is_not_a_leak():
    env = Environment(sanitize=True)

    def careful(env):
        timer = env.timeout(1000)
        timer.cancel_scheduled()
        yield env.timeout(1)

    env.process(careful(env), name="careful")
    env.run(until=10)
    assert env.sanitize_check(strict=True) == []


# -- deadlock ---------------------------------------------------------------


def test_two_process_deadlock_reports_both_await_sites():
    env = Environment(sanitize=True)
    ev_a = env.event()
    ev_b = env.event()

    def alice(env):
        yield ev_a  # waits for bob, who waits for alice
        ev_b.succeed()

    def bob(env):
        yield ev_b
        ev_a.succeed()

    env.process(alice(env), name="alice")
    env.process(bob(env), name="bob")
    env.run()

    findings = env.sanitize_check(strict=False)
    deadlocks = {f.process: f for f in findings if f.kind == "deadlock"}
    assert set(deadlocks) == {"alice", "bob"}
    assert_site_in(
        deadlocks["alice"], test_two_process_deadlock_reports_both_await_sites
    )
    assert_site_in(
        deadlocks["bob"], test_two_process_deadlock_reports_both_await_sites
    )
    for finding in deadlocks.values():
        assert "nothing can ever wake it" in finding.detail


def test_early_stop_is_not_reported_as_deadlock():
    """A run stopped with events still pending is just unfinished:
    parked processes must not be misdiagnosed as deadlocked."""
    env = Environment(sanitize=True)

    def slow(env):
        yield env.timeout(1000)

    env.process(slow(env), name="slow")
    env.run(until=10)
    findings = env.sanitize_check(strict=False)
    assert [f.kind for f in findings] == ["event-leak"]


# -- resource leak ----------------------------------------------------------


@pytest.mark.allow_sanitizer_findings
def test_resource_leak_names_process_and_request_line():
    env = Environment(sanitize=True)
    res = Resource(env, capacity=2)

    def hog(env, res):
        req = res.request()  # simlint: disable=SL011(deliberate leak fixture the runtime sanitizer must catch),SL101(deliberate leak fixture the runtime sanitizer must catch)
        yield req
        yield env.timeout(1)

    env.process(hog(env, res), name="hog")
    env.run()

    leaks = [f for f in env.sanitize_check(strict=False) if f.kind == "resource-leak"]
    assert len(leaks) == 1
    assert leaks[0].process == "hog"
    assert "Resource" in leaks[0].detail
    assert_site_in(leaks[0], test_resource_leak_names_process_and_request_line)
    # Spontaneous: recorded the moment the process exited, mirrored to
    # the module registry the conftest guard drains.
    assert any(f.kind == "resource-leak" for f in drain_spontaneous_findings())


def test_with_statement_release_is_clean():
    env = Environment(sanitize=True)
    res = Resource(env, capacity=1)

    def polite(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(polite(env, res), name="polite")
    env.run()
    assert env.sanitize_check(strict=True) == []


# -- shared-dict race -------------------------------------------------------


@pytest.mark.allow_sanitizer_findings
def test_shared_dict_lost_update_names_writer_and_line():
    env = Environment(sanitize=True)
    counters = env.shared_dict("test.counters")
    assert isinstance(counters, SharedDict)
    counters["hits"] = 0

    def racer(env, counters, name):
        value = counters["hits"]  # read ...
        yield env.timeout(1)  # ... lose atomicity ...
        counters["hits"] = value + 1  # simlint: disable=SL102(deliberate lost-update fixture the runtime sanitizer must catch)

    env.process(racer(env, counters, "r1"), name="r1")
    env.process(racer(env, counters, "r2"), name="r2")
    env.run()

    races = [f for f in env.sanitize_check(strict=False) if f.kind == "shared-dict-race"]
    assert len(races) == 1  # the second writer loses the first's update
    assert races[0].process in {"r1", "r2"}
    assert "test.counters" in races[0].detail
    assert "lost update" in races[0].detail
    assert_site_in(races[0], test_shared_dict_lost_update_names_writer_and_line)
    assert counters["hits"] == 1  # the update really was lost
    drain_spontaneous_findings()


def test_shared_dict_serialized_writers_are_clean():
    env = Environment(sanitize=True)
    counters = env.shared_dict("test.counters")
    counters["hits"] = 0

    def writer(env, counters):
        yield env.timeout(1)
        counters["hits"] = counters["hits"] + 1  # re-read after the yield

    env.process(writer(env, counters), name="w1")
    env.process(writer(env, counters), name="w2")
    env.run()
    assert env.sanitize_check(strict=True) == []
    assert counters["hits"] == 2


def test_shared_dict_is_plain_dict_when_sanitizer_off():
    env = Environment(sanitize=False)
    assert type(env.shared_dict("anything")) is dict


# -- enablement plumbing ----------------------------------------------------


def test_env_var_enables_sanitizer(monkeypatch):
    from repro.sim import core

    monkeypatch.setattr(core, "_DEFAULT_SANITIZE", None)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Environment().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Environment().sanitizer is None


def test_explicit_flag_beats_default():
    # conftest sets the suite-wide default to True; an explicit False
    # must still win.
    assert Environment(sanitize=False).sanitizer is None
    assert Environment().sanitizer is not None


def test_unsanitized_env_check_is_noop():
    env = Environment(sanitize=False)
    assert env.sanitize_check(strict=True) == []
