"""simlint: every rule must fire on a known-bad fixture and stay quiet
on the idiomatic counterpart — and the repository itself must lint clean."""

from __future__ import annotations

import json
import os
import textwrap

from repro.sanitize import simlint

SRC_ROOT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro"
)


def findings_for(source: str):
    return [
        f
        for f in simlint.lint_source(textwrap.dedent(source), "fixture.py")
        if not f.suppressed
    ]


def rule_ids(source: str) -> set[str]:
    return {f.rule.id for f in findings_for(source)}


# -- SL001 wall-clock ------------------------------------------------------


def test_wall_clock_flagged():
    assert "SL001" in rule_ids(
        """
        import time
        def f():
            return time.time()
        """
    )


def test_wall_clock_from_import_and_datetime():
    src = """
        from time import perf_counter
        from datetime import datetime
        def f():
            return perf_counter(), datetime.now()
        """
    assert [f.rule.id for f in findings_for(src)] == ["SL001", "SL001"]


def test_env_now_not_flagged():
    assert not findings_for(
        """
        def f(env):
            return env.now
        """
    )


# -- SL002 real-sleep ------------------------------------------------------


def test_time_sleep_flagged():
    assert "SL002" in rule_ids(
        """
        import time
        def f():
            time.sleep(0.1)
        """
    )


# -- SL003 global-random ---------------------------------------------------


def test_global_random_flagged():
    assert "SL003" in rule_ids(
        """
        import random
        def f():
            return random.randint(1, 6)
        """
    )


def test_numpy_global_random_flagged_but_generator_ok():
    src = """
        import numpy as np
        def bad():
            return np.random.random()
        def good():
            rng = np.random.default_rng(7)
            return rng.random()
        """
    found = findings_for(src)
    assert [f.rule.id for f in found] == ["SL003"]
    assert found[0].line == 4


def test_seeded_generator_method_not_flagged():
    assert not findings_for(
        """
        def f(rng):
            return rng.normal(0.0, 1.0)
        """
    )


# -- SL004 nondet-entropy --------------------------------------------------


def test_uuid4_urandom_secrets_flagged():
    src = """
        import uuid, os, secrets
        def f():
            return uuid.uuid4(), os.urandom(8), secrets.token_hex(4)
        """
    assert [f.rule.id for f in findings_for(src)] == ["SL004"] * 3


# -- SL005 set-iteration ---------------------------------------------------


def test_set_iteration_flagged():
    src = """
        def f(items):
            for item in set(items):
                pass
            return [x for x in {1, 2, 3}]
        """
    assert [f.rule.id for f in findings_for(src)] == ["SL005", "SL005"]


def test_sorted_set_not_flagged():
    assert not findings_for(
        """
        def f(items):
            for item in sorted(set(items)):
                pass
        """
    )


# -- SL006 / SL007 id and hash ordering ------------------------------------


def test_id_call_flagged():
    assert "SL006" in rule_ids(
        """
        def f(obj):
            return {id(obj): obj}
        """
    )


def test_hash_flagged_outside_dunder_hash():
    src = """
        def f(name):
            return hash(name)
        class C:
            def __hash__(self):
                return hash(self.name)
        """
    found = findings_for(src)
    assert [f.rule.id for f in found] == ["SL007"]
    assert found[0].line == 3


# -- SL008 swallow-interrupt -----------------------------------------------


def test_broad_except_around_yield_flagged():
    assert "SL008" in rule_ids(
        """
        def proc(env):
            try:
                yield env.timeout(1)
            except Exception:
                pass
        """
    )


def test_bare_except_flagged_too():
    assert "SL008" in rule_ids(
        """
        def proc(env):
            try:
                yield env.timeout(1)
            except:
                pass
        """
    )


def test_explicit_interrupt_handler_passes():
    assert not findings_for(
        """
        from repro.sim import Interrupt
        def proc(env):
            try:
                yield env.timeout(1)
            except Interrupt:
                raise
            except Exception:
                pass
        """
    )


def test_reraising_broad_handler_passes():
    assert not findings_for(
        """
        def proc(env):
            try:
                yield env.timeout(1)
            except Exception:
                cleanup = True
                raise
        """
    )


def test_broad_except_without_yield_not_flagged():
    assert not findings_for(
        """
        def proc(env):
            try:
                value = compute()
            except Exception:
                value = None
            yield env.timeout(1)
        """
    )


# -- SL009 orphan-event ----------------------------------------------------


def test_orphan_event_flagged():
    assert "SL009" in rule_ids(
        """
        def proc(env):
            ev = env.event()
            yield ev
        """
    )


def test_escaping_event_not_flagged():
    assert not findings_for(
        """
        def proc(env, registry):
            ev = env.event()
            registry.append(ev)
            yield ev
        """
    )


# -- SL010 dropped-event ---------------------------------------------------


def test_discarded_timeout_flagged():
    assert "SL010" in rule_ids(
        """
        def proc(env):
            env.timeout(5)
            yield env.timeout(1)
        """
    )


def test_yielded_timeout_not_flagged():
    assert not findings_for(
        """
        def proc(env):
            yield env.timeout(5)
        """
    )


# -- SL011 raw-request -----------------------------------------------------


def test_raw_request_flagged():
    assert "SL011" in rule_ids(
        """
        def proc(env, res):
            req = res.request()
            yield req
            yield env.timeout(1)
        """
    )


def test_with_request_passes():
    assert not findings_for(
        """
        def proc(env, res):
            with res.request() as req:
                yield req
        """
    )


def test_released_request_passes():
    assert not findings_for(
        """
        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
        """
    )


# -- suppressions ----------------------------------------------------------


def test_suppression_with_reason_suppresses():
    src = textwrap.dedent(
        """
        import time
        def f():
            return time.time()  # simlint: disable=wall-clock(host bench timing)
        """
    )
    findings = simlint.lint_source(src, "fixture.py")
    assert len(findings) == 1
    assert findings[0].suppressed
    assert findings[0].justification == "host bench timing"


def test_suppression_by_rule_id():
    src = """
        import time
        def f():
            return time.time()  # simlint: disable=SL001(host bench timing)
        """
    assert not findings_for(src)


def test_suppression_without_reason_is_a_finding():
    src = """
        import time
        def f():
            return time.time()  # simlint: disable=wall-clock()
        """
    assert rule_ids(src) == {"SL000", "SL001"}


def test_suppression_of_unknown_rule_is_a_finding():
    src = """
        def f():
            return 1  # simlint: disable=made-up-rule(because)
        """
    assert rule_ids(src) == {"SL000"}


def test_suppression_inside_string_literal_ignored():
    assert not findings_for(
        '''
        HELP = "suppress with `# simlint: disable=RULE(reason)`"
        '''
    )


def test_suppression_on_other_line_does_not_leak():
    src = """
        import time
        # simlint: disable=wall-clock(wrong line)
        def f():
            return time.time()
        """
    assert "SL001" in rule_ids(src)


# -- report / CLI ----------------------------------------------------------


def test_syntax_error_reported_not_raised():
    findings = simlint.lint_source("def broken(:\n", "oops.py")
    assert [f.rule.id for f in findings] == ["SL000"]


def test_report_json_roundtrip(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    report = simlint.lint_paths([str(tmp_path)])
    assert report.files_scanned == 1
    payload = json.loads(report.format_json())
    assert payload["findings"][0]["rule"] == "SL001"
    assert "wall-clock" in report.format_text()


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    bad.write_text(
        "import time\n"
        "t = time.time()  # simlint: disable=wall-clock(fixture)\n"
    )
    assert main(["lint", str(bad)]) == 0
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "swallow-interrupt" in out


def test_every_rule_has_id_name_and_rationale():
    assert len(simlint.RULES) == 16  # SL000..SL011 + flow family SL100..SL103
    for rule in simlint.RULES.values():
        assert rule.id.startswith("SL")
        assert rule.name and rule.summary and rule.rationale


def test_repository_lints_clean():
    """The acceptance gate: zero unsuppressed findings over src/repro,
    and every suppression that does exist carries a justification."""
    report = simlint.lint_paths([SRC_ROOT])
    assert report.files_scanned > 50
    unsuppressed = report.unsuppressed
    assert unsuppressed == [], "\n".join(f.format() for f in unsuppressed)
    for finding in report.suppressed:
        assert finding.justification
