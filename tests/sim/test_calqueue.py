"""Unit tests for the event-queue backends (calendar + heap).

Ordering-sensitive tests drive the queues directly with raw
``(time, priority, eid, payload)`` entries, always respecting the
kernel's scheduling invariant (no push earlier than the last pop);
the differential/property suites cover whole-workload equivalence.
"""

import heapq

import pytest

import repro.sim.calqueue as cq
from repro.sim import (
    EVENT_QUEUE_BACKENDS,
    CalendarEventQueue,
    Environment,
    HeapEventQueue,
    default_event_queue,
    make_event_queue,
    set_default_event_queue,
)

INF = float("inf")


def entries(times, priority=1):
    return [(t, priority, eid, None) for eid, t in enumerate(times)]


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


# -- backend selection ---------------------------------------------------


def test_backend_registry_and_errors():
    assert EVENT_QUEUE_BACKENDS == ("heap", "calendar")
    with pytest.raises(ValueError):
        make_event_queue("btree")
    with pytest.raises(ValueError):
        set_default_event_queue("btree")


def test_default_is_calendar(monkeypatch):
    monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
    assert default_event_queue() == "calendar"
    assert Environment(sanitize=False).event_queue_backend == "calendar"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
    assert default_event_queue() == "heap"
    assert Environment(sanitize=False).event_queue_backend == "heap"
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "btree")
    with pytest.raises(ValueError):
        default_event_queue()


def test_process_default_overrides_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
    previous = set_default_event_queue("heap")
    try:
        assert Environment(sanitize=False).event_queue_backend == "heap"
    finally:
        set_default_event_queue(previous)


def test_explicit_argument_overrides_everything(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
    previous = set_default_event_queue("calendar")
    try:
        env = Environment(sanitize=False, event_queue="heap")
        assert env.event_queue_backend == "heap"
    finally:
        set_default_event_queue(previous)


def test_queue_stats_exposed_on_environment():
    env = Environment(sanitize=False, event_queue="calendar")
    stats = env.queue_stats()
    assert stats["backend"] == "calendar"
    assert stats["pending"] == 0
    assert Environment(sanitize=False, event_queue="heap").queue_stats() == {
        "backend": "heap",
        "pending": 0,
    }


# -- basic draining ------------------------------------------------------


@pytest.mark.parametrize("backend", EVENT_QUEUE_BACKENDS)
def test_drains_in_full_tuple_order(backend):
    queue = make_event_queue(backend)
    # Mix near (current bucket), mid (bucket map), and far (overflow)
    # times, with ties broken by priority then eid.
    times = [0.25, 0.25, 7.5, 3.0, 3.0, 3.0, 5000.0, 123456.0, 0.0]
    batch = [(t, eid % 2, eid, None) for eid, t in enumerate(times)]
    for entry in batch:
        queue.push(entry)
    assert len(queue) == len(batch)
    assert queue.next_time() == 0.0
    assert drain(queue) == sorted(batch)
    assert not queue


@pytest.mark.parametrize("backend", EVENT_QUEUE_BACKENDS)
def test_empty_queue_behaviour(backend):
    queue = make_event_queue(backend)
    assert len(queue) == 0
    assert not queue
    assert queue.next_time() == INF
    with pytest.raises(IndexError):
        queue.pop()


@pytest.mark.parametrize("backend", EVENT_QUEUE_BACKENDS)
def test_interleaved_push_pop_respects_clock(backend):
    queue = make_event_queue(backend)
    for entry in entries([10.0, 20.0, 30.0]):
        queue.push(entry)
    assert queue.pop()[0] == 10.0
    # New pushes at/after the popped time, including a far jump.
    queue.push((10.0, 0, 100, None))
    queue.push((15.0, 1, 101, None))
    queue.push((99999.0, 1, 102, None))
    assert [e[0] for e in drain(queue)] == [10.0, 15.0, 20.0, 30.0, 99999.0]


def test_infinite_timestamps_live_in_overflow():
    queue = CalendarEventQueue()
    queue.push((INF, 1, 1, None))
    queue.push((INF, 1, 2, None))
    queue.push((1.0, 1, 3, None))
    assert queue.stats()["overflow"] == 2
    popped = drain(queue)
    assert [e[2] for e in popped] == [3, 1, 2]


def test_overflow_key_collision_merges_into_bucket():
    # Regression (REVIEW.md): an overflow entry whose bucket key
    # collides with a bucket-map key must merge into that bucket
    # before it drains.  The strict migrate compare let the bucket
    # drain first even though the overflow entry was earlier in time.
    queue = CalendarEventQueue(width=1.0)
    queue.push((5000.0, 1, 0, None))  # beyond the 4096-bucket horizon
    queue.push((1000.0, 1, 1, None))
    # Advancing to t=1000 moves the horizon past key 5000.
    assert queue.pop() == (1000.0, 1, 1, None)
    queue.push((5000.5, 1, 2, None))  # bucket-map entry, same key 5000
    assert [e[2] for e in drain(queue)] == [0, 2]


def test_overflow_key_collision_tie_breaks_by_priority():
    # Same collision, equal times: the tuple order (priority, eid)
    # must decide, not which zone the entry happened to live in.
    queue = CalendarEventQueue(width=1.0)
    queue.push((5000.25, 1, 0, None))  # overflow
    queue.push((1000.0, 1, 1, None))
    queue.pop()
    queue.push((5000.25, 0, 2, None))  # bucket, URGENT wins the tie
    queue.push((5000.25, 1, 3, None))  # bucket, eid loses to overflow
    assert [e[2] for e in drain(queue)] == [2, 0, 3]


def test_far_timer_joined_by_same_bucket_event_fires_in_order():
    # Kernel-level differential for the same scenario: a long retry
    # deadline beyond the horizon, later joined by a same-bucket
    # timeout scheduled once the clock has advanced far enough.
    orders = {}
    for backend in EVENT_QUEUE_BACKENDS:
        env = Environment(sanitize=False, event_queue=backend)
        fired = []

        def note(tag):
            return lambda event, tag=tag: fired.append((tag, env.now))

        far = env.timeout(5000.0)
        far.callbacks.append(note("far"))
        step = env.timeout(1000.0)

        def join(event):
            late = env.timeout(4000.5)  # absolute 5000.5: same bucket
            late.callbacks.append(note("late"))

        step.callbacks.append(join)
        env.run()
        orders[backend] = fired
    assert orders["calendar"] == orders["heap"]
    assert [tag for tag, _ in orders["calendar"]] == ["far", "late"]


def test_far_future_entries_migrate_from_overflow():
    queue = CalendarEventQueue(width=1.0)
    horizon = cq._HORIZON * 1.0
    times = [horizon * 3 + k * 0.5 for k in range(32)] + [0.5]
    batch = entries(times)
    for entry in batch:
        queue.push(entry)
    assert queue.stats()["overflow"] == 32
    assert drain(queue) == sorted(batch)
    assert queue.stats()["migrated"] > 0


# -- dynamic width -------------------------------------------------------


def test_sparse_buckets_grow_width():
    queue = CalendarEventQueue(width=0.01)
    # One entry per bucket for well over a resize window of advances.
    count = cq._RESIZE_INTERVAL * 2 + 16
    batch = entries([0.015 + k * 0.01 for k in range(count)])
    for entry in batch:
        queue.push(entry)
    assert drain(queue) == sorted(batch)
    stats = queue.stats()
    assert stats["resizes"] >= 1
    assert stats["width"] > 0.01


def test_degenerate_current_bucket_shrinks_width():
    # A width that swallows the whole pending horizon never advances,
    # so the shrink must trigger from the pop path.
    queue = CalendarEventQueue(width=cq._MAX_WIDTH)
    # Enough entries that the bucket is still degenerate when the pop
    # sample fires (the sample runs every _CUR_SAMPLE pops).
    count = cq._CUR_HIGH + cq._CUR_SAMPLE + 64
    batch = entries([(k * 7919) % 100000 + 0.5 for k in range(count)])
    for entry in batch:
        queue.push(entry)
    assert queue.stats()["current_bucket"] == count
    popped = [queue.pop() for _ in range(cq._CUR_SAMPLE + 8)]
    stats = queue.stats()
    assert stats["resizes"] >= 1
    assert stats["width"] < cq._MAX_WIDTH
    popped.extend(drain(queue))
    assert popped == sorted(batch)


def test_same_instant_burst_never_shrinks():
    queue = CalendarEventQueue(width=cq._MAX_WIDTH)
    count = cq._CUR_HIGH + cq._CUR_SAMPLE + 64
    batch = entries([42.0] * count)
    for entry in batch:
        queue.push(entry)
    for _ in range(cq._CUR_SAMPLE + 8):
        queue.pop()
    stats = queue.stats()
    assert stats["resizes"] == 0
    assert stats["width"] == cq._MAX_WIDTH


def test_rebuild_preserves_length_and_order():
    queue = CalendarEventQueue(width=1.0)
    batch = entries([k * 0.37 for k in range(500)] + [1e7, INF])
    for entry in batch:
        queue.push(entry)
    length = len(queue)
    queue._rebuild(0.125)
    assert len(queue) == length
    assert queue.stats()["width"] == 0.125
    assert drain(queue) == sorted(batch)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        CalendarEventQueue(width=0.0)
    with pytest.raises(ValueError):
        CalendarEventQueue(width=-1.0)


# -- randomized cross-check (non-Hypothesis smoke) -----------------------


def test_random_interleaving_matches_heap_reference():
    import random

    rng = random.Random(1234)
    queue = CalendarEventQueue()
    reference: list = []
    now = 0.0
    eid = 0
    popped_queue, popped_ref = [], []
    for _ in range(5000):
        if reference and rng.random() < 0.45:
            popped_queue.append(queue.pop())
            entry = heapq.heappop(reference)
            popped_ref.append(entry)
            now = entry[0]
        else:
            delay = rng.choice([0.0, 0.0, 0.001, 0.5, 60.0, 7e4, INF])
            entry = (now + delay, rng.randint(0, 1), eid, None)
            eid += 1
            queue.push(entry)
            heapq.heappush(reference, entry)
    while reference:
        popped_queue.append(queue.pop())
        popped_ref.append(heapq.heappop(reference))
    assert popped_queue == popped_ref


def test_heap_backend_stats_and_order():
    queue = HeapEventQueue()
    batch = entries([5.0, 1.0, 3.0])
    for entry in batch:
        queue.push(entry)
    assert queue.stats() == {"backend": "heap", "pending": 3}
    assert queue.next_time() == 1.0
    assert drain(queue) == sorted(batch)
