"""Kernel semantics: events, timeouts, processes, interrupts, run()."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.core import Timeout


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_clock_starts_at_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_number_advances_clock(self, env):
        env.run(until=50.0)
        assert env.now == 50.0

    def test_run_until_past_raises(self, env):
        env.run(until=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)


class TestTimeout:
    def test_timeout_fires_at_right_time(self, env):
        log = []

        def proc(env):
            yield env.timeout(5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [5.0]

    def test_timeout_value_passthrough(self, env):
        def proc(env):
            value = yield env.timeout(1, value="hello")
            return value

        assert env.run(env.process(proc(env))) == "hello"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        assert env.run(env.process(proc(env))) == 0.0

    def test_timeouts_fire_in_order(self, env):
        log = []

        def waiter(env, delay):
            yield env.timeout(delay)
            log.append(delay)

        for d in (3, 1, 2):
            env.process(waiter(env, d))
        env.run()
        assert log == [1, 2, 3]

    def test_simultaneous_timeouts_fifo(self, env):
        log = []

        def waiter(env, tag):
            yield env.timeout(1)
            log.append(tag)

        for tag in "abc":
            env.process(waiter(env, tag))
        env.run()
        assert log == ["a", "b", "c"]


class TestEvents:
    def test_event_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_event_double_trigger_raises(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_event_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_failed_event_raises_in_waiter(self, env):
        event = env.event()

        def proc(env):
            try:
                yield event
            except ValueError as exc:
                return str(exc)

        p = env.process(proc(env))
        event.fail(ValueError("boom"))
        assert env.run(p) == "boom"

    def test_unhandled_failed_event_crashes_run(self, env):
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failed_event_is_silent(self, env):
        event = env.event()
        event.fail(RuntimeError("quiet"))
        event.defuse()
        env.run()  # no raise

    def test_waiting_on_processed_event_resumes_immediately(self, env):
        event = env.event()
        event.succeed("cached")
        env.run()  # processes the event

        def proc(env):
            value = yield event
            return (env.now, value)

        assert env.run(env.process(proc(env))) == (0.0, "cached")


class TestProcess:
    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 42

        assert env.run(env.process(proc(env))) == 42

    def test_process_is_alive(self, env):
        def proc(env):
            yield env.timeout(10)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_non_event_raises(self, env):
        def proc(env):
            yield 42

        with pytest.raises(SimulationError):
            env.run(env.process(proc(env)))

    def test_process_exception_propagates_to_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("inside")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_waiting_process_as_event(self, env):
        def inner(env):
            yield env.timeout(2)
            return "inner-done"

        def outer(env):
            value = yield env.process(inner(env))
            return value

        assert env.run(env.process(outer(env))) == "inner-done"

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                return ("interrupted", env.now, exc.cause)

        def killer(env, victim):
            yield env.timeout(3)
            victim.interrupt("reason")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        assert env.run(victim) == ("interrupted", 3.0, "reason")

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        assert env.run(victim) == 7.0

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            with pytest.raises(SimulationError):
                env.active_process.interrupt()
            yield env.timeout(0)

        env.run(env.process(proc(env)))


class TestRunUntilEvent:
    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(4)
            return "val"

        p = env.process(proc(env))
        assert env.run(until=p) == "val"
        assert env.now == 4.0

    def test_run_until_untriggerable_event_raises(self, env):
        dead = env.event()
        with pytest.raises(SimulationError):
            env.run(until=dead)

    def test_run_until_already_processed_event(self, env):
        event = env.event()
        event.succeed(7)
        env.run()
        assert env.run(until=event) == 7
