"""Kernel counters and tombstoned (lazily cancelled) events."""

import pytest

from repro.sim import Resource, Store
from repro.sim.core import Timeout


class TestKernelCounters:
    def test_counters_start_at_zero(self, env):
        assert env.kernel_counters() == {
            "events_scheduled": 0,
            "events_executed": 0,
            "peak_heap_size": 0,
            "tombstones_skipped": 0,
            "max_waiter_queue": 0,
        }

    def test_events_are_counted(self, env):
        def proc(env):
            yield env.timeout(1)
            yield env.timeout(2)

        env.process(proc(env))
        env.run()
        counters = env.kernel_counters()
        assert counters["events_scheduled"] > 0
        assert counters["events_executed"] > 0
        assert counters["events_scheduled"] >= counters["events_executed"]
        assert counters["peak_heap_size"] >= 1

    def test_peak_heap_size_tracks_fanout(self, env):
        def waiter(env, d):
            yield env.timeout(d)

        for i in range(50):
            env.process(waiter(env, i))
        env.run()
        assert env.peak_heap_size >= 50

    def test_max_waiter_queue_tracks_store_backlog(self, env):
        store = Store(env)
        for _ in range(25):
            store.get()
        assert env.max_waiter_queue >= 25

    def test_max_waiter_queue_tracks_resource_backlog(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            with res.request() as req:
                yield req
                yield env.timeout(1)

        for _ in range(10):
            env.process(proc(env))
        env.run()
        assert env.max_waiter_queue >= 9


class TestTombstones:
    def test_cancelled_timeout_does_not_fire(self, env):
        fired = []
        timer = Timeout(env, 5.0)
        timer.callbacks.append(lambda ev: fired.append(env.now))
        timer.cancel_scheduled()
        env.run()
        assert fired == []
        assert env.tombstones_skipped == 1

    def test_cancel_does_not_disturb_other_events(self, env):
        fired = []
        doomed = Timeout(env, 1.0)
        doomed.callbacks.append(lambda ev: fired.append("doomed"))
        keeper = Timeout(env, 2.0)
        keeper.callbacks.append(lambda ev: fired.append("keeper"))
        doomed.cancel_scheduled()
        env.run()
        assert fired == ["keeper"]
        assert env.now == pytest.approx(2.0)

    def test_rateshare_reuses_single_timer(self, env):
        """A pool arms one timer per reschedule, tombstoning the old."""
        from repro.platform.rateshare import FairShareChannel

        channel = FairShareChannel(env, capacity=10.0)
        a = channel.execute(work=100.0)
        channel.execute(work=100.0)  # supersedes a's ETA -> tombstone
        env.run(a.done)
        assert env.tombstones_skipped >= 1
