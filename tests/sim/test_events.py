"""Condition events: AllOf / AnyOf semantics."""

import pytest

from repro.sim import AllOf, AnyOf, Environment
from repro.sim.events import ConditionValue


class TestAnyOf:
    def test_fires_on_first(self, env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(2, "b")

        def proc(env):
            result = yield AnyOf(env, [t1, t2])
            return (env.now, list(result.values()))

        assert env.run(env.process(proc(env))) == (1.0, ["a"])

    def test_empty_fires_immediately(self, env):
        def proc(env):
            yield AnyOf(env, [])
            return env.now

        assert env.run(env.process(proc(env))) == 0.0

    def test_simultaneous_children_both_collected(self, env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(1, "b")

        def proc(env):
            result = yield AnyOf(env, [t1, t2])
            return list(result.values())

        # FIFO: t1 processed first; t2 not yet processed at that moment.
        assert env.run(env.process(proc(env))) == ["a"]

    def test_failed_child_fails_condition(self, env):
        bad = env.event()
        t = env.timeout(10)

        def proc(env):
            try:
                yield AnyOf(env, [bad, t])
            except ValueError:
                return "failed"

        p = env.process(proc(env))
        bad.fail(ValueError("child"))
        assert env.run(p) == "failed"


class TestAllOf:
    def test_waits_for_all(self, env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(3, "b")

        def proc(env):
            result = yield AllOf(env, [t1, t2])
            return (env.now, list(result.values()))

        assert env.run(env.process(proc(env))) == (3.0, ["a", "b"])

    def test_empty_fires_immediately(self, env):
        def proc(env):
            yield AllOf(env, [])
            return "ok"

        assert env.run(env.process(proc(env))) == "ok"

    def test_with_already_processed_children(self, env):
        e = env.event()
        e.succeed("pre")
        env.run()
        t = env.timeout(2, "post")

        def proc(env):
            result = yield AllOf(env, [e, t])
            return list(result.values())

        assert env.run(env.process(proc(env))) == ["pre", "post"]

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1, "x")
        t2 = env.timeout(2, "y")

        def proc(env):
            result = yield AllOf(env, [t1, t2])
            assert t1 in result
            assert result[t1] == "x"
            assert dict(result.items())[t2] == "y"
            assert result == {t1: "x", t2: "y"}
            return True

        assert env.run(env.process(proc(env)))

    def test_mixed_environments_rejected(self, env):
        other = Environment()
        t1 = env.timeout(1)
        t2 = other.timeout(1)
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            AllOf(env, [t1, t2])


class TestConditionValue:
    def test_missing_key_raises(self, env):
        cv = ConditionValue()
        with pytest.raises(KeyError):
            cv[env.event()]

    def test_todict_empty(self):
        assert ConditionValue().todict() == {}
