"""Resource and PriorityResource semantics."""

import pytest

from repro.sim import PriorityResource, Resource


def holder(env, resource, hold, log, tag, priority=None):
    if priority is None:
        request = resource.request()
    else:
        request = resource.request(priority=priority)
    with request as req:
        yield req
        log.append((tag, env.now))
        yield env.timeout(hold)


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serializes_beyond_capacity(self, env):
        res = Resource(env, capacity=1)
        log = []
        for tag in "abc":
            env.process(holder(env, res, 5, log, tag))
        env.run()
        assert log == [("a", 0.0), ("b", 5.0), ("c", 10.0)]

    def test_parallel_within_capacity(self, env):
        res = Resource(env, capacity=3)
        log = []
        for tag in "abc":
            env.process(holder(env, res, 5, log, tag))
        env.run()
        assert [t for _, t in log] == [0.0, 0.0, 0.0]

    def test_count_and_queue(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            with res.request() as req:
                yield req
                assert res.count == 1
                yield env.timeout(1)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert res.count == 0
        assert res.queue == []

    def test_cancel_pending_request(self, env):
        res = Resource(env, capacity=1)
        log = []

        def canceller(env):
            req = res.request()
            yield env.timeout(0)  # it is queued behind the holder
            req.cancel()
            log.append("cancelled")

        def first(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        env.process(first(env))
        env.process(canceller(env))
        env.run()
        assert "cancelled" in log

    def test_release_explicit(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            release = res.release(req)
            yield release
            return res.count

        assert env.run(env.process(proc(env))) == 0


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def blocker(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(5)

        env.process(blocker(env))

        def late(env):
            yield env.timeout(1)
            env.process(holder(env, res, 1, log, "low", priority=10))
            env.process(holder(env, res, 1, log, "high", priority=-10))

        env.process(late(env))
        env.run()
        assert [tag for tag, _ in log] == ["high", "low"]

    def test_fifo_within_same_priority(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def blocker(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(5)

        env.process(blocker(env))

        def late(env):
            yield env.timeout(1)
            for tag in ("first", "second"):
                env.process(holder(env, res, 1, log, tag, priority=5))

        env.process(late(env))
        env.run()
        assert [tag for tag, _ in log] == ["first", "second"]
