"""Store / PriorityStore / FilterStore semantics."""

import pytest

from repro.sim import (
    FilterStore,
    PriorityItem,
    PriorityStore,
    Store,
)


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            out = []
            for _ in range(3):
                item = yield store.get()
                out.append(item)
            return out

        env.process(producer(env))
        assert env.run(env.process(consumer(env))) == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        assert env.run(c) == (5.0, "late")

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("a", 0.0), ("b", 4.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestCancellation:
    def test_cancelled_get_is_skipped(self, env):
        store = Store(env)
        first = store.get()
        second = store.get()
        first.cancel()
        store.put("item")
        env.run()
        assert not first.triggered
        assert second.triggered and second.value == "item"

    def test_cancelled_put_is_skipped(self, env):
        store = Store(env, capacity=1)
        store.put("held")
        blocked = store.put("blocked")
        behind = store.put("behind")
        blocked.cancel()

        def consumer(env):
            out = []
            for _ in range(2):
                out.append((yield store.get()))
            return out

        assert env.run(env.process(consumer(env))) == ["held", "behind"]
        assert not blocked.triggered

    def test_cancel_after_trigger_is_noop(self, env):
        store = Store(env)
        put = store.put("x")
        assert put.triggered
        put.cancel()
        env.run()
        assert len(store) == 1


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        for v in (5, 1, 3):
            store.put(v)
        env.run()

        def consumer(env):
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert env.run(env.process(consumer(env))) == [1, 3, 5]

    def test_priority_item_wrapper(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(2, "low"))
        store.put(PriorityItem(1, "high"))
        env.run()

        def consumer(env):
            item = yield store.get()
            return item.item

        assert env.run(env.process(consumer(env))) == "high"

    def test_priority_item_equality(self):
        assert PriorityItem(1, "x") == PriorityItem(1, "x")
        assert PriorityItem(1, "x") != PriorityItem(2, "x")
        assert PriorityItem(1, "a") < PriorityItem(2, "b")


class TestFilterStore:
    def test_predicate_selects(self, env):
        store = FilterStore(env)
        for v in (1, 2, 3, 4):
            store.put(v)
        env.run()

        def consumer(env):
            item = yield store.get(lambda x: x % 2 == 0)
            return item

        assert env.run(env.process(consumer(env))) == 2

    def test_nonmatching_get_does_not_block_others(self, env):
        store = FilterStore(env)
        log = []

        def want(env, predicate, tag):
            item = yield store.get(predicate)
            log.append((tag, item))

        env.process(want(env, lambda x: x == "never", "blocked"))
        env.process(want(env, lambda x: x == "yes", "served"))

        def producer(env):
            yield env.timeout(1)
            yield store.put("yes")

        env.process(producer(env))
        env.run()
        assert log == [("served", "yes")]

    def test_default_predicate_is_fifo(self, env):
        store = FilterStore(env)
        store.put("a")
        store.put("b")
        env.run()

        def consumer(env):
            return (yield store.get())

        assert env.run(env.process(consumer(env))) == "a"
