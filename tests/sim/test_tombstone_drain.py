"""The shared tombstone-drain helpers and their call sites.

``repro.sim.heaptools`` is the single audited skip loop for lazily
tombstoned heaps and deques; these tests pin its contract directly and
then exercise the two historical hand-rolled sites it replaced
(:class:`PriorityResource`'s wait heap and the store waiter queues)
through their cancel edge cases.
"""

from collections import deque

import pytest

from repro.sim import Environment, PriorityResource, PriorityStore, Store
from repro.sim.heaptools import (
    drain_deque,
    drain_heap,
    peek_live_deque,
    peek_live_heap,
    pop_live_heap,
)


def is_dead(entry):
    return entry[1]


# -- helper contract -----------------------------------------------------


def test_drain_heap_drops_only_dead_prefix():
    heap = [(1, True), (2, True), (3, False), (4, True)]
    skipped = []
    drain_heap(heap, is_dead, on_skip=skipped.append)
    assert heap[0] == (3, False)
    # The interior tombstone (4, True) stays until it reaches the head.
    assert (4, True) in heap
    assert skipped == [(1, True), (2, True)]


def test_drain_heap_empties_fully_dead_heap():
    heap = [(1, True), (2, True)]
    drain_heap(heap, is_dead)
    assert heap == []


def test_peek_live_heap_returns_none_when_empty():
    assert peek_live_heap([], is_dead) is None
    heap = [(5, False)]
    assert peek_live_heap(heap, is_dead) == (5, False)
    assert heap  # peek does not pop the live head


def test_pop_live_heap_skips_dead_and_counts():
    heap = [(1, True), (2, False), (3, True)]
    skipped = []
    assert pop_live_heap(heap, is_dead, on_skip=skipped.append) == (2, False)
    assert skipped == [(1, True)]


def test_pop_live_heap_plain_mode_and_empty():
    heap = [(2, False), (5, False)]
    assert pop_live_heap(heap) == (2, False)
    with pytest.raises(IndexError):
        pop_live_heap([])
    with pytest.raises(IndexError):
        pop_live_heap([(1, True)], is_dead)


def test_drain_and_peek_deque():
    queue = deque([(1, True), (2, False), (3, True)])
    skipped = []
    assert peek_live_deque(queue, is_dead, on_skip=skipped.append) == (2, False)
    assert skipped == [(1, True)]
    assert list(queue) == [(2, False), (3, True)]
    drain_deque(queue, is_dead)
    assert queue[0] == (2, False)
    assert peek_live_deque(deque(), is_dead) is None


# -- PriorityResource cancel edge cases ----------------------------------


def test_priority_resource_cancel_then_grant_skips_tombstone():
    env = Environment(sanitize=False)
    resource = PriorityResource(env, capacity=1)
    granted = []

    def holder(env):
        with resource.request(priority=0) as req:
            yield req
            granted.append("holder")
            yield env.timeout(10.0)

    def cancelled_waiter(env):
        req = resource.request(priority=1)
        yield env.timeout(1.0)
        req.cancel()  # withdraw while still queued
        req.cancel()  # duplicate cancel must be a no-op
        granted.append("withdrew")

    def patient_waiter(env):
        with resource.request(priority=2) as req:
            yield req
            granted.append("patient")

    env.process(holder(env))
    env.process(cancelled_waiter(env))
    env.process(patient_waiter(env))
    env.run()
    # The withdrawn higher-priority request never gets the slot.
    assert granted == ["holder", "withdrew", "patient"]


def test_priority_resource_duplicate_cancel_after_grant_releases_once():
    env = Environment(sanitize=False)
    resource = PriorityResource(env, capacity=1)
    log = []

    def first(env):
        req = resource.request(priority=0)
        yield req
        log.append("got")
        req.cancel()
        req.cancel()  # double release must not free a second slot
        log.append("released")

    def second(env):
        with resource.request(priority=5) as req:
            yield req
            log.append("second")

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert log == ["got", "released", "second"]
    assert resource.count == 0
    assert resource.queue == []


def test_priority_resource_queue_view_hides_tombstones():
    env = Environment(sanitize=False)
    resource = PriorityResource(env, capacity=1)
    holder = resource.request(priority=0)
    env.run()
    assert holder.triggered
    live = resource.request(priority=2)
    dead = resource.request(priority=1)
    dead.cancel()
    assert resource.queue == [live]
    resource.release(holder)
    env.run()
    assert live.triggered


# -- store cancel edge cases ---------------------------------------------


def test_priority_store_cancel_get_then_get():
    env = Environment(sanitize=False)
    store = PriorityStore(env)
    abandoned = store.get()
    abandoned.cancel()
    abandoned.cancel()  # duplicate cancel is a no-op
    store.put(3)
    store.put(1)
    env.run()
    taken = store.get()
    env.run()
    # The cancelled get never consumed anything; retrieval is
    # lowest-first.
    assert not abandoned.triggered
    assert taken.value == 1
    assert len(store) == 1


def test_store_cancelled_put_never_inserts():
    env = Environment(sanitize=False)
    store = Store(env, capacity=1)
    first = store.put("a")
    blocked = store.put("b")
    blocked.cancel()
    blocked.cancel()
    env.run()
    assert first.triggered
    got = store.get()
    env.run()
    assert got.value == "a"
    assert len(store) == 0
    # The withdrawn put's item must not surface later.
    late = store.get()
    store.put("c")
    env.run()
    assert late.value == "c"
