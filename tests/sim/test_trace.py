"""Tracer behaviour."""

from repro.sim import Tracer


def test_records_carry_time(env):
    tracer = Tracer(env)
    tracer.record("cat", "x", value=1)
    env.run(until=5)
    tracer.record("cat", "y", value=2)
    times = [r.time for r in tracer]
    assert times == [0.0, 5.0]


def test_select_filters(env):
    tracer = Tracer(env)
    tracer.record("a", "one")
    tracer.record("b", "two")
    tracer.record("a", "three")
    assert len(tracer.select(category="a")) == 2
    assert len(tracer.select(name="two")) == 1
    assert tracer.categories() == {"a", "b"}


def test_select_time_window(env):
    tracer = Tracer(env)
    tracer.record("c", "t0")
    env.run(until=10)
    tracer.record("c", "t10")
    env.run(until=20)
    tracer.record("c", "t20")
    assert [r.name for r in tracer.select(since=5, until=15)] == ["t10"]


def test_disabled_category_not_stored_but_counted(env):
    tracer = Tracer(env)
    tracer.disable_category("noisy")
    tracer.record("noisy", "x")
    tracer.record("kept", "y")
    assert len(tracer) == 1
    assert tracer.count("noisy") == 1
    tracer.enable_category("noisy")
    tracer.record("noisy", "z")
    assert len(tracer) == 2


def test_disabled_tracer_stores_nothing(env):
    tracer = Tracer(env, enabled=False)
    tracer.record("a", "x")
    assert len(tracer) == 0
    assert tracer.count("a") == 1


def test_clear(env):
    tracer = Tracer(env)
    tracer.record("a", "x")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.count("a") == 0


def test_record_get_helper(env):
    tracer = Tracer(env)
    tracer.record("a", "x", key="val")
    rec = tracer.records[0]
    assert rec.get("key") == "val"
    assert rec.get("missing", "default") == "default"
