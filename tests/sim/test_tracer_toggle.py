"""Regression battery for the tracer's mid-run toggles and record sink.

The per-category toggle is how large runs stay cheap (disable chatty
categories mid-flight, re-enable for the window of interest), and the
sink is the telemetry bridge's attachment point — both must agree on
one rule: only *stored* records exist downstream, but emission counts
keep the full story.
"""

from __future__ import annotations

from repro.sim.trace import TraceRecord, Tracer


def test_mid_run_disable_suppresses_storage_not_counts(env):
    tracer = Tracer(env)
    tracer.record("chatty", "a")
    tracer.disable_category("chatty")
    tracer.record("chatty", "b")
    tracer.record("quiet", "c")
    assert [r.name for r in tracer.records] == ["a", "c"]
    assert tracer.count("chatty") == 2  # emission is still counted
    assert tracer.count("quiet") == 1


def test_mid_run_reenable_resumes_storage(env):
    tracer = Tracer(env)
    tracer.disable_category("x")
    tracer.record("x", "dropped")
    tracer.enable_category("x")
    tracer.record("x", "kept")
    assert [r.name for r in tracer.records] == ["kept"]
    assert tracer.count("x") == 2


def test_disable_is_idempotent_and_scoped(env):
    tracer = Tracer(env)
    tracer.disable_category("x")
    tracer.disable_category("x")
    tracer.enable_category("never-disabled")  # harmless no-op
    tracer.record("x", "a")
    tracer.record("y", "b")
    assert [r.category for r in tracer.records] == ["y"]


def test_globally_disabled_tracer_still_counts(env):
    tracer = Tracer(env, enabled=False)
    tracer.record("x", "a")
    assert len(tracer) == 0
    assert tracer.count("x") == 1
    assert tracer.categories() == set()


def test_sink_sees_exactly_the_stored_records(env):
    tracer = Tracer(env)
    seen: list[TraceRecord] = []
    tracer.sink = seen.append
    tracer.record("keep", "a")
    tracer.disable_category("mute")
    tracer.record("mute", "b")  # suppressed: must not reach the sink
    tracer.enable_category("mute")
    tracer.record("mute", "c")
    assert [r.name for r in seen] == ["a", "c"]
    assert seen == tracer.records  # same objects, no copies


def test_sink_not_called_when_tracer_disabled(env):
    tracer = Tracer(env, enabled=False)
    calls = []
    tracer.sink = calls.append
    tracer.record("x", "a")
    assert calls == []


def test_clear_resets_counts_and_records(env):
    tracer = Tracer(env)
    tracer.record("x", "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.count("x") == 0
