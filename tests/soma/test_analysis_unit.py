"""Unit tests for the SOMA analysis functions on synthetic stores."""

import pytest

from repro.conduit import Node
from repro.soma import (
    NamespaceStore,
    cpu_utilization_series,
    free_resource_estimate,
    load_imbalance,
    rank_region_breakdown,
    task_state_observations,
    task_throughput,
    workflow_summary_series,
)


def hw_store():
    store = NamespaceStore("hardware")
    for t, util in ((30.0, 0.1), (60.0, 0.8), (90.0, 0.9)):
        tree = Node()
        base = f"PROC/cn0001/{t:.6f}"
        tree[f"{base}/cpu_utilization"] = util
        tree[f"{base}/gpu_utilization"] = util / 2
        store.append(t, "hwmon@cn0001", tree)
    tree = Node()
    tree["PROC/cn0002/45.000000/cpu_utilization"] = 0.5
    tree["PROC/cn0002/45.000000/gpu_utilization"] = 0.0
    store.append(45.0, "hwmon@cn0002", tree)
    return store


def wf_store():
    store = NamespaceStore("workflow")
    for i, (t, done) in enumerate([(60.0, 0), (120.0, 3), (180.0, 9)]):
        tree = Node()
        tree["RP/summary/timestamp"] = t
        tree["RP/summary/tasks_seen"] = 10
        tree["RP/summary/done"] = done
        tree["RP/summary/failed"] = 0
        tree["RP/summary/running"] = 10 - done
        tree["RP/summary/pending"] = 0
        tree[f"RP/task.{i:06d}/{t - 1:.6f}"] = "AGENT_EXECUTING"
        store.append(t, "rpmon", tree)
    return store


def tau_store():
    store = NamespaceStore("performance")
    tree = Node()
    for rank, compute in enumerate([10.0, 12.0, 8.0]):
        base = f"TAU/task.000007/cn0001/rank{rank:05d}"
        tree[f"{base}/solve"] = compute
        tree[f"{base}/MPI_Recv"] = 12.0 - compute
    store.append(100.0, "tau@task.000007", tree)
    return store


class TestHardwareAnalysis:
    def test_series_per_host(self):
        series = cpu_utilization_series(hw_store())
        assert set(series) == {"cn0001", "cn0002"}
        assert [p.cpu_utilization for p in series["cn0001"]] == [0.1, 0.8, 0.9]
        assert series["cn0001"][0].gpu_utilization == 0.05

    def test_series_host_filter(self):
        series = cpu_utilization_series(hw_store(), hostname="cn0002")
        assert set(series) == {"cn0002"}

    def test_free_resource_estimate_window(self):
        headroom = free_resource_estimate(hw_store(), window=40.0, now=100.0)
        # Only samples in [60, 100]: cn0001 has cpu 0.8, 0.9 -> 1-0.85
        # and gpu 0.4, 0.45 -> 1-0.425.
        assert headroom["cn0001"]["cpu"] == pytest.approx(0.15)
        assert headroom["cn0001"]["gpu"] == pytest.approx(0.575)
        assert "cn0002" not in headroom  # sample at 45 is outside

    def test_free_resource_estimate_clamps_oversubscribed(self):
        store = NamespaceStore("hardware")
        from repro.conduit import Node

        tree = Node()
        tree["PROC/cn0001/50.000000/cpu_utilization"] = 1.4
        tree["PROC/cn0001/50.000000/gpu_utilization"] = 1.1
        store.append(50.0, "hwmon@cn0001", tree)
        headroom = free_resource_estimate(store, window=100.0, now=100.0)
        # Oversubscribed samples clamp to zero headroom, never negative.
        assert headroom["cn0001"] == {"cpu": 0.0, "gpu": 0.0}

    def test_empty_store(self):
        assert cpu_utilization_series(NamespaceStore("hardware")) == {}
        assert free_resource_estimate(
            NamespaceStore("hardware"), 10.0, 100.0
        ) == {}


class TestWorkflowAnalysis:
    def test_summary_series(self):
        series = workflow_summary_series(wf_store())
        assert [s["done"] for s in series] == [0.0, 3.0, 9.0]

    def test_throughput(self):
        rates = task_throughput(wf_store())
        assert rates[0][1] == pytest.approx(3 / 60.0)
        assert rates[1][1] == pytest.approx(6 / 60.0)

    def test_throughput_skips_cross_source_pairs(self):
        from repro.conduit import Node

        store = wf_store()
        # A second monitor publishing its own (lower) counters midway
        # must not fabricate rates against the first monitor's series.
        tree = Node()
        tree["RP/summary/timestamp"] = 150.0
        tree["RP/summary/done"] = 1
        store.append(150.0, "rpmon-b", tree)
        rates = dict(task_throughput(store))
        assert rates[120.0] == pytest.approx(3 / 60.0)
        assert rates[180.0] == pytest.approx(6 / 60.0)
        assert 150.0 not in rates  # lone cross-source sample: no pair

    def test_throughput_surfaces_counter_regression(self):
        from repro.conduit import Node

        store = wf_store()
        # Same source regressing its done counter: a real symptom the
        # old clamp silently hid — the negative rate must surface.
        tree = Node()
        tree["RP/summary/timestamp"] = 240.0
        tree["RP/summary/done"] = 3
        store.append(240.0, "rpmon", tree)
        rates = dict(task_throughput(store))
        assert rates[240.0] == pytest.approx(-6 / 60.0)

    def test_state_observations(self):
        obs = task_state_observations(wf_store(), event="AGENT_EXECUTING")
        assert len(obs) == 3
        assert obs[0][1] == "task.000000"

    def test_state_observation_dedup(self):
        store = wf_store()
        # Republish the same event: must not double count.
        tree = Node()
        tree["RP/task.000000/59.000000"] = "AGENT_EXECUTING"
        store.append(240.0, "rpmon", tree)
        obs = task_state_observations(store, event="AGENT_EXECUTING")
        assert len(obs) == 3


class TestPerformanceAnalysis:
    def test_breakdown(self):
        breakdown = rank_region_breakdown(tau_store(), "task.000007")
        assert set(breakdown) == {0, 1, 2}
        assert breakdown[1]["solve"] == 12.0

    def test_breakdown_missing_task(self):
        assert rank_region_breakdown(tau_store(), "task.999999") == {}

    def test_load_imbalance_on_compute_only(self):
        imbalance = load_imbalance(tau_store(), "task.000007")
        assert imbalance == pytest.approx(12.0 / 10.0)

    def test_load_imbalance_missing_task_is_zero(self):
        assert load_imbalance(tau_store(), "task.999999") == 0.0
