"""The application namespace: self-reported figures of merit."""

import pytest

from repro.platform import summit_like
from repro.rp import (
    Client,
    FixedDurationModel,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.soma import (
    APPLICATION,
    ApplicationMetrics,
    SomaConfig,
    deploy_soma,
    figure_of_merit_series,
)
from repro.workloads import DDMDParams, ddmd_phase_stages


@pytest.fixture
def stack():
    session = Session(cluster_spec=summit_like(4), seed=5)
    client = Client(session)
    env = session.env
    box = {}

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=2, agent_nodes=1)
        )
        box["deployment"] = yield from deploy_soma(
            client,
            pilot,
            SomaConfig(
                namespaces=("workflow", "hardware", "application"),
                monitors=(),
            ),
        )

    env.run(env.process(main(env)))
    return session, client, box["deployment"]


def test_record_and_flush(stack):
    session, client, deployment = stack
    env = session.env

    def main(env):
        metrics = ApplicationMetrics(session, "task.999999")
        metrics.record("fom", 1.5, unit="x/s")
        metrics.record("fom", 2.5, unit="x/s")
        ok = yield from metrics.flush()
        return ok, metrics.published_samples

    ok, published = env.run(env.process(main(env)))
    assert ok and published == 2
    store = deployment.store(APPLICATION)
    assert len(store) == 1
    series = figure_of_merit_series(store, "task.999999", "fom")
    assert [v for _, v in series] == [1.5, 2.5]
    client.close()


def test_flush_empty_is_noop(stack):
    session, client, deployment = stack
    env = session.env

    def main(env):
        metrics = ApplicationMetrics(session, "task.000042")
        ok = yield from metrics.flush()
        return ok

    assert env.run(env.process(main(env)))
    assert len(deployment.store(APPLICATION)) == 0
    client.close()


def test_instrumented_model_default_metric(stack):
    session, client, deployment = stack
    env = session.env

    def main(env):
        td = deployment.wrap_with_app_metrics(
            TaskDescription(name="plain", model=FixedDurationModel(10.0))
        )
        tasks = client.submit_tasks([td])
        yield from client.wait_tasks(tasks)
        return tasks[0]

    task = env.run(env.process(main(env)))
    store = deployment.store(APPLICATION)
    series = figure_of_merit_series(store, task.uid, "progress_rate")
    assert len(series) == 1
    assert series[0][1] > 0
    client.close()


def test_ddmd_sim_reports_atom_timesteps(stack):
    """The paper's example: MD reports atom-timesteps per second."""
    session, client, deployment = stack
    env = session.env
    params = DDMDParams(num_sim_tasks=2)

    def main(env):
        stages = dict(ddmd_phase_stages(params))
        tds = [
            deployment.wrap_with_app_metrics(td)
            for td in stages["simulation"]
        ]
        tasks = client.submit_tasks(tds)
        yield from client.wait_tasks(tasks)
        return tasks

    tasks = env.run(env.process(main(env)))
    store = deployment.store(APPLICATION)
    for task in tasks:
        series = figure_of_merit_series(
            store, task.uid, "atom_timesteps_per_s"
        )
        assert len(series) == 1
        assert series[0][1] > 0
    client.close()
