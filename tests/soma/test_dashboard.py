"""The text dashboard over all four namespaces."""

import pytest

from repro.experiments import TUNING, run_openfoam_experiment
from repro.soma import no_soma, render_dashboard
from repro.rp import Session
from repro.platform import summit_like


@pytest.fixture(scope="module")
def monitored_run():
    return run_openfoam_experiment(TUNING, seed=11)


def test_dashboard_renders_all_configured_namespaces(monitored_run):
    text = render_dashboard(monitored_run.deployment)
    assert "SOMA dashboard" in text
    assert "workflow namespace" in text
    assert "hardware namespace" in text
    assert "performance namespace" in text


def test_dashboard_workflow_counts(monitored_run):
    text = render_dashboard(monitored_run.deployment)
    assert "done=4" in text.replace("  ", " ").replace("done= 4", "done=4")


def test_dashboard_host_cap(monitored_run):
    text = render_dashboard(monitored_run.deployment, max_hosts=2)
    assert "more nodes" in text


def test_dashboard_baseline_run():
    session = Session(cluster_spec=summit_like(2))
    assert "not deployed" in render_dashboard(no_soma(session))
