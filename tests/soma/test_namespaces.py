"""Unit tests for the SOMA namespace registry."""

import pytest

from repro.soma.namespaces import (
    ALL_NAMESPACES,
    APPLICATION,
    HARDWARE,
    PERFORMANCE,
    WORKFLOW,
    namespace_root,
)


class TestNamespaceConstants:
    def test_four_namespaces_as_in_the_paper(self):
        assert len(ALL_NAMESPACES) == 4
        assert set(ALL_NAMESPACES) == {
            WORKFLOW,
            HARDWARE,
            PERFORMANCE,
            APPLICATION,
        }

    def test_names_are_distinct_lowercase_identifiers(self):
        assert len(set(ALL_NAMESPACES)) == len(ALL_NAMESPACES)
        for name in ALL_NAMESPACES:
            assert name == name.lower()
            assert name.isidentifier()


class TestNamespaceRoot:
    def test_roots_match_the_paper_listings(self):
        assert namespace_root(WORKFLOW) == "RP"
        assert namespace_root(HARDWARE) == "PROC"
        assert namespace_root(PERFORMANCE) == "TAU"
        assert namespace_root(APPLICATION) == "APP"

    def test_every_namespace_has_a_root(self):
        roots = [namespace_root(ns) for ns in ALL_NAMESPACES]
        assert len(set(roots)) == len(ALL_NAMESPACES)

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError, match="unknown namespace"):
            namespace_root("metrics")

    def test_root_is_not_the_namespace_name(self):
        # Conduit roots are the short uppercase tags of Listings 1-2,
        # not the namespace identifiers themselves.
        for ns in ALL_NAMESPACES:
            assert namespace_root(ns) != ns
            assert namespace_root(ns).isupper()
