"""SOMA service + client over the full RP stack."""

import pytest

from repro.conduit import Node
from repro.platform import summit_like
from repro.rp import Client, PilotDescription, Session
from repro.soma import (
    ALL_NAMESPACES,
    HARDWARE,
    SomaClient,
    SomaConfig,
    WORKFLOW,
    deploy_soma,
    namespace_root,
    soma_service_description,
)


@pytest.fixture
def stack():
    session = Session(cluster_spec=summit_like(4), seed=2)
    client = Client(session)
    return session, client


def deploy(session, client, config):
    env = session.env

    def main(env):
        pilot = yield from client.submit_pilot(
            PilotDescription(nodes=2, agent_nodes=1)
        )
        deployment = yield from deploy_soma(client, pilot, config)
        return pilot, deployment

    return env.run(env.process(main(env)))


class TestConfig:
    def test_total_ranks(self):
        cfg = SomaConfig(ranks_per_namespace=2, namespaces=(WORKFLOW, HARDWARE))
        assert cfg.total_ranks == 4

    def test_hardware_frequency_defaults_to_monitoring(self):
        cfg = SomaConfig(monitoring_frequency=45.0)
        assert cfg.effective_hardware_frequency == 45.0
        cfg2 = cfg.with_updates(hardware_frequency=30.0)
        assert cfg2.effective_hardware_frequency == 30.0

    def test_namespace_roots(self):
        assert namespace_root(WORKFLOW) == "RP"
        assert namespace_root(HARDWARE) == "PROC"
        with pytest.raises(ValueError):
            namespace_root("bogus")

    def test_all_namespaces_covered(self):
        assert len(ALL_NAMESPACES) == 4


class TestServiceDeployment:
    def test_instances_registered_per_namespace(self, stack):
        session, client = stack
        config = SomaConfig(
            namespaces=(WORKFLOW, HARDWARE), monitors=()
        )
        _, deployment = deploy(session, client, config)
        for namespace in config.namespaces:
            assert (
                session.rpc_registry.try_lookup(f"soma.{namespace}")
                is not None
            )
        client.close()

    def test_service_description_resources(self):
        session = Session(cluster_spec=summit_like(2))
        config = SomaConfig(
            ranks_per_namespace=3, namespaces=(WORKFLOW, HARDWARE)
        )
        td = soma_service_description(session, config)
        assert td.total_cores == 6
        assert td.mode == "service"

    def test_publish_and_query(self, stack):
        session, client = stack
        config = SomaConfig(namespaces=(HARDWARE,), monitors=())
        _, deployment = deploy(session, client, config)
        env = session.env

        def publisher(env):
            soma = SomaClient(session, "test-client")
            data = Node()
            data["PROC/cn0001/1.0/Uptime"] = 100
            ok = yield from soma.publish(HARDWARE, data)
            assert ok
            stats = yield from soma.query(HARDWARE, kind="stats")
            return stats

        stats = env.run(env.process(publisher(env)))
        assert stats["records"] == 1
        assert stats["sources"] == 1
        store = deployment.store(HARDWARE)
        assert len(store) == 1
        assert store.latest().data["PROC/cn0001/1.0/Uptime"] == 100
        client.close()

    def test_query_kinds(self, stack):
        session, client = stack
        config = SomaConfig(namespaces=(HARDWARE,), monitors=())
        deploy(session, client, config)
        env = session.env

        def proc(env):
            soma = SomaClient(session, "q-client")
            data = Node()
            data["PROC/x"] = 1
            yield from soma.publish(HARDWARE, data)
            latest = yield from soma.query(HARDWARE, kind="latest")
            merged = yield from soma.query(HARDWARE, kind="merged")
            sources = yield from soma.query(HARDWARE, kind="sources")
            records = yield from soma.query(HARDWARE, kind="records")
            return latest, merged, sources, records

        latest, merged, sources, records = env.run(env.process(proc(env)))
        assert latest.data["PROC/x"] == 1
        assert merged["PROC/x"] == 1
        assert sources == ["q-client"]
        assert len(records) == 1
        client.close()

    def test_publish_non_conduit_rejected_in_response(self, stack):
        session, client = stack
        config = SomaConfig(namespaces=(HARDWARE,), monitors=())
        deploy(session, client, config)
        env = session.env

        def proc(env):
            soma = SomaClient(session, "bad-client")
            server = yield from soma.connect(HARDWARE)
            response = yield from soma._rpc.call(
                server, "publish", body={"not": "conduit"}, payload_bytes=10
            )
            return response

        response = env.run(env.process(proc(env)))
        assert not response.ok
        assert isinstance(response.body, TypeError)
        client.close()

    def test_shutdown_surfaces_publish_failure(self, stack):
        session, client = stack
        config = SomaConfig(namespaces=(HARDWARE,), monitors=())
        deploy(session, client, config)
        env = session.env
        client.close()  # tears the service down

        def proc(env):
            soma = SomaClient(session, "late-client")
            data = Node()
            data["PROC/y"] = 1
            ok = yield from soma.publish(HARDWARE, data)
            return ok, soma.publish_failures

        ok, failures = env.run(env.process(proc(env)))
        assert not ok
        assert failures == 1

    def test_store_raises_for_baseline(self):
        from repro.soma import no_soma

        session = Session(cluster_spec=summit_like(2))
        deployment = no_soma(session)
        assert not deployment.enabled
        with pytest.raises(RuntimeError):
            deployment.store(HARDWARE)


class TestShardedService:
    """The facility deployment path: bring_up on raw nodes, no pilot."""

    def make_stack(self, shards=2, **config_kwargs):
        from repro.soma import ShardedSomaServiceModel

        session = Session(cluster_spec=summit_like(2, name="fac"), seed=5)
        config = SomaConfig(
            namespaces=(WORKFLOW, HARDWARE),
            monitors=(),
            shards=shards,
            **config_kwargs,
        )
        model = ShardedSomaServiceModel(session, config)
        model.bring_up(
            list(session.cluster.nodes[:2]), session.cluster.network
        )
        return session, config, model

    def test_requires_sharded_config(self):
        from repro.soma import ShardedSomaServiceModel

        session = Session(cluster_spec=summit_like(2))
        with pytest.raises(ValueError):
            ShardedSomaServiceModel(session, SomaConfig(monitors=()))

    def test_bring_up_registers_instance_qualified_names(self):
        session, config, model = self.make_stack()
        for instance in config.instance_names:
            for namespace in config.namespaces:
                name = f"soma.{instance}.{namespace}"
                assert session.rpc_registry.try_lookup(name) is not None
        # Classic unqualified names must NOT exist: a stale unsharded
        # client would otherwise silently talk past the ring.
        assert session.rpc_registry.try_lookup("soma.workflow") is None

    def test_instances_on_distinct_nodes(self):
        session, config, model = self.make_stack()
        hosts = {
            server.node.name
            for server in model.servers.values()
        }
        assert len(hosts) == 2

    def test_store_routes_through_the_ring(self):
        session, config, model = self.make_stack()
        ring = model.ring
        for namespace in config.namespaces:
            owner = ring.owner(f"default/{namespace}")
            assert (
                model.store(namespace)
                is model.stores[f"{owner}.{namespace}"]
            )
        assert len(model.stores_for(WORKFLOW)) == 2

    def test_publish_lands_in_owning_shard_only(self):
        session, config, model = self.make_stack()
        env = session.env

        def proc(env):
            soma = config.make_client(session, "t-client", tenant="acme")
            data = Node()
            data["RP/x"] = 1
            ok = yield from soma.publish(WORKFLOW, data)
            assert ok

        env.run(env.process(proc(env)))
        owner = model.ring.owner("acme/workflow")
        assert len(model.store(WORKFLOW, tenant="acme")) == 1
        for key, store in model.stores.items():
            expected = 1 if key == f"{owner}.workflow" else 0
            assert len(store) == expected

    def test_summarize_degrade_annotates_next_publish(self):
        session, config, model = self.make_stack(
            admission_rate=0.1, admission_burst=1.0
        )
        env = session.env

        def proc(env):
            soma = config.make_client(session, "deg-client", tenant="t0")
            soma.degrade = "summarize"
            data = Node()
            data["RP/x"] = 1
            first = yield from soma.publish(WORKFLOW, data)
            # Burst depth 1: the immediate second publish is rejected
            # and degrades to a summarized drop.
            second = yield from soma.publish(WORKFLOW, data)
            yield env.timeout(60.0)  # budget refills
            third = yield from soma.publish(WORKFLOW, data)
            return first, second, third, soma

        first, second, third, soma = env.run(env.process(proc(env)))
        assert (first, second, third) == (True, False, True)
        assert soma.rejected == 1 and soma.gaps == 1
        latest = model.store(WORKFLOW, tenant="t0").latest()
        prefix = "SOMA/degraded/deg-client/workflow"
        assert latest.data[f"{prefix}/samples"] == 1
        assert latest.data[f"{prefix}/bytes"] > 0
