"""Property battery for the SOMA sharding layer (ISSUE 9 satellite).

Three contracts pinned here, each load-bearing for the facility
deployment:

* **Balance** — across 10³ structured shard keys the max/mean
  keys-per-instance ratio stays under :data:`BALANCE_BOUND` for any
  2–8 instance ring at the default vnode count.
* **Minimal remap** — joining an instance only moves keys *to* the
  joiner; leaving only moves keys *off* the leaver; join∘leave is the
  identity on the ownership map.
* **Placement stability** — ownership is a pure function of the label
  bytes: independent of insertion order, of ``PYTHONHASHSEED``, and of
  the process computing it.

Plus unit coverage for the admission-control primitives
(:class:`TokenBucket`, :class:`AdmissionController`) and the windowed
:class:`ServerStats` accounting the queueing detector reads.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messaging.protocol import RPCRequest
from repro.messaging.rpc import ServerStats
from repro.soma.sharding import (
    AdmissionController,
    HashRing,
    ShardRouter,
    TokenBucket,
    instance_names,
    shard_key,
)

#: Configurable balance bound: max/mean shard load over 10³ keys.  128
#: vnodes lands ≤1.4 empirically across random tenant populations;
#: 1.5 leaves slack without hiding a real imbalance regression (a
#: vnode-less ring exceeds 2 almost surely).
BALANCE_BOUND = 1.5

tenant_prefixes = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)
instance_counts = st.integers(min_value=2, max_value=8)


def thousand_keys(prefix: str) -> list[str]:
    """10³ structured shard keys: 100 tenants × 10 namespaces."""
    return [
        shard_key(f"{prefix}{t:03d}", f"ns{i:02d}")
        for t in range(100)
        for i in range(10)
    ]


def ownership(ring: HashRing, keys: list[str]) -> dict[str, str]:
    return {key: ring.owner(key) for key in keys}


# -- ring properties -------------------------------------------------


@given(instance_counts, tenant_prefixes)
@settings(max_examples=60, deadline=None)
def test_balance_bound_across_1e3_keys(count, prefix):
    ring = HashRing(instance_names(count))
    keys = thousand_keys(prefix)
    load = ring.load(keys)
    assert sum(load.values()) == len(keys)
    assert len(load) == count  # every instance present, even if cold
    ratio = max(load.values()) / (len(keys) / count)
    assert ratio <= BALANCE_BOUND, f"max/mean {ratio:.3f} on {count} shards"


@given(instance_counts, tenant_prefixes)
@settings(max_examples=40, deadline=None)
def test_join_moves_keys_only_to_the_joiner(count, prefix):
    keys = thousand_keys(prefix)
    ring = HashRing(instance_names(count))
    before = ownership(ring, keys)
    ring.add("joiner")
    after = ownership(ring, keys)
    moved = {k for k in keys if before[k] != after[k]}
    assert all(after[k] == "joiner" for k in moved)
    # The joiner's share is roughly 1/(count+1); minimal remap means
    # nothing beyond its arcs moved, so the moved set IS its ownership.
    assert moved == {k for k in keys if after[k] == "joiner"}


@given(instance_counts, tenant_prefixes)
@settings(max_examples=40, deadline=None)
def test_leave_moves_keys_only_off_the_leaver(count, prefix):
    keys = thousand_keys(prefix)
    names = instance_names(count)
    ring = HashRing(names)
    before = ownership(ring, keys)
    leaver = names[count // 2]
    ring.remove(leaver)
    after = ownership(ring, keys)
    for key in keys:
        if before[key] != leaver:
            assert after[key] == before[key], "survivor's key moved"
        else:
            assert after[key] != leaver


@given(instance_counts, tenant_prefixes)
@settings(max_examples=25, deadline=None)
def test_join_then_leave_is_identity(count, prefix):
    keys = thousand_keys(prefix)
    ring = HashRing(instance_names(count))
    before = ownership(ring, keys)
    ring.add("transient")
    ring.remove("transient")
    assert ownership(ring, keys) == before


@given(instance_counts, tenant_prefixes)
@settings(max_examples=25, deadline=None)
def test_placement_independent_of_insertion_order(count, prefix):
    keys = thousand_keys(prefix)
    names = instance_names(count)
    forward = HashRing(names)
    backward = HashRing(reversed(names))
    assert ownership(forward, keys) == ownership(backward, keys)


def test_placement_identical_across_processes():
    """Ownership must not depend on ``PYTHONHASHSEED`` / the process.

    Runs the same placement in a child interpreter with a different
    hash seed; a ``hash()``-based ring would disagree almost surely.
    """
    keys = thousand_keys("acme")
    here = ownership(HashRing(instance_names(4)), keys)
    program = (
        "import json, sys\n"
        "from repro.soma.sharding import HashRing, instance_names\n"
        "keys = json.load(sys.stdin)\n"
        "ring = HashRing(instance_names(4))\n"
        "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED="12345")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", program],
        input=json.dumps(keys),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(proc.stdout) == here


def test_ring_edge_cases():
    ring = HashRing()
    with pytest.raises(ValueError):
        ring.owner("anything")
    with pytest.raises(ValueError):
        ring.remove("absent")
    ring.add("solo")
    with pytest.raises(ValueError):
        ring.add("solo")
    assert ring.owner(shard_key("t", "ns")) == "solo"
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    assert instance_names(3) == ("s00", "s01", "s02")
    assert "solo" in ring and len(ring) == 1


def test_router_names():
    unsharded = ShardRouter(registry_prefix="soma")
    assert unsharded.owner("t0", "workflow") is None
    assert unsharded.registry_name("t0", "workflow") == "soma.workflow"
    ring = HashRing(instance_names(2))
    sharded = ShardRouter(registry_prefix="soma", ring=ring)
    owner = sharded.owner("t0", "workflow")
    assert owner in ("s00", "s01")
    assert (
        sharded.registry_name("t0", "workflow") == f"soma.{owner}.workflow"
    )
    # Same tenant, different namespace may land elsewhere — but the
    # name is always instance-qualified under sharding.
    assert sharded.registry_name("t0", "hardware").startswith("soma.s")


# -- admission control ----------------------------------------------


class _Clock:
    """Stand-in for Environment: AdmissionController only reads .now."""

    def __init__(self):
        self.now = 0.0


def test_token_bucket_burst_then_rate():
    bucket = TokenBucket(rate=2.0, burst=3.0)
    assert [bucket.admit(0.0) for _ in range(4)] == [True] * 3 + [False]
    # 0.25s at 2 tokens/s refills half a token: still refused.
    assert not bucket.admit(0.25)
    # By t=1.0 two tokens accrued (minus the 0.5 spent nothing — the
    # refused admit consumed no tokens): admit twice, refuse the third.
    assert bucket.admit(1.0)
    assert bucket.admit(1.0)
    assert not bucket.admit(1.0)
    # Refill caps at burst depth no matter how long the idle gap.
    bucket2 = TokenBucket(rate=1.0, burst=2.0)
    for _ in range(2):
        assert bucket2.admit(0.0)
    assert [bucket2.admit(1e6) for _ in range(3)] == [True, True, False]


def _request(method: str, tenant: str) -> RPCRequest:
    return RPCRequest(
        method=method,
        payload_bytes=1.0,
        body=None,
        client="test",
        sent_at=0.0,
        tenant=tenant,
    )


def _publish(tenant: str) -> RPCRequest:
    return _request("publish", tenant)


def test_admission_controller_per_tenant_isolation():
    clock = _Clock()
    gate = AdmissionController(clock, rate=1.0, burst=2.0)
    # Tenant a exhausts its burst; tenant b is untouched.
    assert gate(_publish("a")) and gate(_publish("a"))
    assert not gate(_publish("a"))
    assert gate(_publish("b")) and gate(_publish("b"))
    # Queries are never throttled, even for the throttled tenant.
    assert gate(_request("query", "a"))
    assert gate.counters() == {
        "admitted": {"a": 2, "b": 2},
        "rejected": {"a": 1},
    }
    # The clock advancing re-admits deterministically.
    clock.now = 5.0
    assert gate(_publish("a"))
    with pytest.raises(ValueError):
        AdmissionController(clock, rate=0.0)


# -- windowed ServerStats --------------------------------------------


def test_server_stats_zero_call_safe():
    stats = ServerStats()
    assert stats.mean_queue_time == 0.0
    assert stats.worst_window_queue_time == 0.0
    delta = ServerStats.interval(stats.snapshot(), stats.snapshot())
    assert delta["mean_queue_time"] == 0.0
    assert delta["mean_busy_time"] == 0.0


def test_server_stats_window_rolls_on_fixed_grid():
    stats = ServerStats(window_seconds=60.0)
    # First window anchored at t=5: two calls, mean queue 1.0.
    stats.note_call(5.0, queue_time=0.5, busy_time=0.1, nbytes=10.0)
    stats.note_call(20.0, queue_time=1.5, busy_time=0.1, nbytes=10.0)
    assert stats.windows_closed == 0
    assert stats.worst_window_queue_time == pytest.approx(1.0)
    # t=70 is past 5+60: the first window closes with its mean, and
    # the new window starts on the grid point 65, not at 70.
    stats.note_call(70.0, queue_time=0.2, busy_time=0.1, nbytes=10.0)
    assert stats.windows_closed == 1
    assert stats.peak_window_queue_time == pytest.approx(1.0)
    assert stats.peak_window_calls == 2
    assert stats._window_start == pytest.approx(65.0)
    # A long idle gap skips straight to the right grid window.
    stats.note_call(65.0 + 60.0 * 7 + 3.0, 0.0, 0.1, 10.0)
    assert stats._window_start == pytest.approx(65.0 + 60.0 * 7)
    # Lifetime counters unaffected by windowing.
    assert stats.calls == 4
    assert stats.queue_time == pytest.approx(2.2)


def test_server_stats_peak_survives_quiet_tail():
    """The burst stays visible after hours of idle-ish traffic —
    exactly the dilution the lifetime mean suffers from."""
    stats = ServerStats(window_seconds=60.0)
    for i in range(10):  # saturated minute: mean queue 2s
        stats.note_call(i * 6.0, 2.0, 0.1, 1.0)
    for i in range(200):  # three+ hours of instant service
        stats.note_call(100.0 + i * 60.0, 0.0, 0.1, 1.0)
    assert stats.mean_queue_time < 0.1  # diluted
    assert stats.worst_window_queue_time == pytest.approx(2.0)  # not


def test_server_stats_interval_deltas():
    stats = ServerStats()
    stats.note_call(0.0, 1.0, 0.5, 100.0)
    before = stats.snapshot()
    stats.note_call(1.0, 3.0, 0.5, 50.0)
    stats.note_call(2.0, 1.0, 0.5, 50.0)
    stats.errors += 1
    stats.rejections += 2
    delta = ServerStats.interval(before, stats.snapshot())
    assert delta["calls"] == 2
    assert delta["bytes"] == pytest.approx(100.0)
    assert delta["errors"] == 1
    assert delta["rejections"] == 2
    assert delta["mean_queue_time"] == pytest.approx(2.0)
    assert delta["mean_busy_time"] == pytest.approx(0.5)
