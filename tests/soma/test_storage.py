"""Namespace stores: time-indexed publish storage."""

import pytest

from repro.conduit import Node
from repro.soma import NamespaceStore


def tree(**leaves):
    node = Node()
    for key, value in leaves.items():
        node[key] = value
    return node


@pytest.fixture
def store():
    s = NamespaceStore("hardware")
    s.append(1.0, "hwmon@cn0001", tree(a=1))
    s.append(2.0, "hwmon@cn0002", tree(b=2))
    s.append(3.0, "hwmon@cn0001", tree(a=3))
    return s


def test_len_and_bytes(store):
    assert len(store) == 3
    assert store.total_bytes > 0


def test_records_time_window(store):
    assert [r.time for r in store.records(since=1.5)] == [2.0, 3.0]
    assert [r.time for r in store.records(until=2.0)] == [1.0, 2.0]
    assert [r.time for r in store.records(since=1.5, until=2.5)] == [2.0]


def test_records_by_source(store):
    recs = store.records(source="hwmon@cn0001")
    assert [r.time for r in recs] == [1.0, 3.0]


def test_latest(store):
    assert store.latest().time == 3.0
    assert store.latest(source="hwmon@cn0002").time == 2.0
    assert store.latest(source="ghost") is None


def test_latest_empty():
    assert NamespaceStore("x").latest() is None


def test_sources(store):
    assert store.sources() == {"hwmon@cn0001", "hwmon@cn0002"}


def test_merged(store):
    merged = store.merged()
    assert merged["a"] == 3  # later publish wins
    assert merged["b"] == 2


def test_out_of_order_insert_keeps_time_order():
    s = NamespaceStore("x")
    s.append(5.0, "a", tree(v=1))
    s.append(2.0, "b", tree(w=2))
    assert [r.time for r in s.records()] == [2.0, 5.0]


def test_iteration(store):
    assert len(list(store)) == 3
