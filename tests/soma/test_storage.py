"""Namespace stores: time-indexed publish storage."""

import pytest

from repro.conduit import Node
from repro.soma import NamespaceStore


def tree(**leaves):
    node = Node()
    for key, value in leaves.items():
        node[key] = value
    return node


@pytest.fixture
def store():
    s = NamespaceStore("hardware")
    s.append(1.0, "hwmon@cn0001", tree(a=1))
    s.append(2.0, "hwmon@cn0002", tree(b=2))
    s.append(3.0, "hwmon@cn0001", tree(a=3))
    return s


def test_len_and_bytes(store):
    assert len(store) == 3
    assert store.total_bytes > 0


def test_records_time_window(store):
    assert [r.time for r in store.records(since=1.5)] == [2.0, 3.0]
    assert [r.time for r in store.records(until=2.0)] == [1.0, 2.0]
    assert [r.time for r in store.records(since=1.5, until=2.5)] == [2.0]


def test_records_by_source(store):
    recs = store.records(source="hwmon@cn0001")
    assert [r.time for r in recs] == [1.0, 3.0]


def test_latest(store):
    assert store.latest().time == 3.0
    assert store.latest(source="hwmon@cn0002").time == 2.0
    assert store.latest(source="ghost") is None


def test_latest_empty():
    assert NamespaceStore("x").latest() is None


def test_sources(store):
    assert store.sources() == {"hwmon@cn0001", "hwmon@cn0002"}


def test_merged(store):
    merged = store.merged()
    assert merged["a"] == 3  # later publish wins
    assert merged["b"] == 2


def test_merged_source_filter(store):
    only_cn1 = store.merged(source="hwmon@cn0001")
    assert only_cn1["a"] == 3
    assert "b" not in only_cn1  # cn0002's publish excluded
    # Composes with the time window: cn0001's later publish drops out.
    early = store.merged(source="hwmon@cn0001", until=1.5)
    assert early["a"] == 1
    assert store.merged(source="ghost").is_empty


def test_out_of_order_insert_keeps_time_order():
    s = NamespaceStore("x")
    s.append(5.0, "a", tree(v=1))
    s.append(2.0, "b", tree(w=2))
    assert [r.time for r in s.records()] == [2.0, 5.0]


def test_iteration(store):
    assert len(list(store)) == 3


def test_source_window_query(store):
    recs = store.records(source="hwmon@cn0001", since=1.5)
    assert [r.time for r in recs] == [3.0]
    assert store.records(source="hwmon@cn0001", since=1.5, until=2.5) == []
    assert store.records(source="ghost", since=0.0) == []


def test_source_index_matches_linear_scan_out_of_order():
    """The per-source index must be the global list filtered by source,
    even through the insort path and timestamp ties."""
    s = NamespaceStore("x")
    appends = [
        (5.0, "a"), (1.0, "b"), (3.0, "a"), (3.0, "b"),
        (2.0, "a"), (5.0, "b"), (4.0, "a"), (3.0, "a"),
    ]
    for i, (at, source) in enumerate(appends):
        s.append(at, source, tree(v=i))
    for source in ("a", "b"):
        expected = [r for r in s.records() if r.source == source]
        assert s.records(source=source) == expected
        assert s.latest(source) == expected[-1]
        for since, until in ((None, None), (2.0, 4.0), (3.0, 3.0), (6.0, None)):
            assert s.records(source=source, since=since, until=until) == [
                r for r in expected
                if (since is None or r.time >= since)
                and (until is None or r.time <= until)
            ]


def test_source_index_latest_after_late_arrival():
    s = NamespaceStore("x")
    s.append(10.0, "a", tree(v=1))
    s.append(4.0, "a", tree(v=2))  # late arrival must not become latest
    assert s.latest("a").time == 10.0
    assert [r.time for r in s.records(source="a")] == [4.0, 10.0]
