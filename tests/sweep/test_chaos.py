"""Crash/resume battery: kill a worker mid-sweep, resume, lose nothing.

Two injected failure modes via :mod:`repro.faults.worker`:

* ``exception`` — the worker raises; the pool survives, the cell is
  recorded failed, and the sweep raises :class:`SweepInterrupted`.
* ``sigkill`` — the worker dies hard; the whole pool breaks mid-sweep
  (in-flight siblings are lost too), exactly like an OOM kill.

In both cases the journal must describe a clean prefix of completed
cells, ``--resume`` must re-execute *only* what never completed (the
journalled cells replay as cache hits, counted), and the final digests
must equal an uninterrupted run's.
"""

from __future__ import annotations

import pytest

from repro.faults.worker import ENV_VAR, WorkerFault, WorkerFaultSpec, check_worker_fault
from repro.sweep import SweepInterrupted, cells_signature, run_sweep

from .util import mini_cell

#: Equal-cost cells tie-break by key in the LPT order, so the fault
#: target (sorting last) is picked up only after the pool has chewed
#: through most of the matrix — the kill lands mid-sweep, not at the
#: start.
CHAOS_SEEDS = (3, 17, 33, 47, 51, 62)
KILL_KEY = f"mini-overload-s{max(CHAOS_SEEDS)}"


def chaos_matrix():
    return [mini_cell(seed) for seed in sorted(CHAOS_SEEDS)]


def arm_fault(monkeypatch, tmp_path, mode: str) -> None:
    spec = WorkerFaultSpec(
        cell=KILL_KEY, mode=mode, once_path=str(tmp_path / "fault.fired")
    )
    monkeypatch.setenv(ENV_VAR, spec.to_env())


def run_reference(tmp_path):
    return run_sweep(chaos_matrix(), jobs=1, sweep_dir=tmp_path / "reference")


@pytest.mark.parametrize("mode", ["exception", "sigkill"])
def test_killed_sweep_resumes_without_reexecution(
    monkeypatch, tmp_path, mode
):
    reference = run_reference(tmp_path)
    all_keys = {c.key for c in chaos_matrix()}

    sweep_dir = tmp_path / "chaos"
    arm_fault(monkeypatch, tmp_path, mode)
    with pytest.raises(SweepInterrupted) as excinfo:
        run_sweep(chaos_matrix(), jobs=2, sweep_dir=sweep_dir)
    partial = excinfo.value.run.manifest

    # The journal holds a clean prefix: completed cells only, never the
    # killed cell, and the fault marker proves the injection fired.
    completed_keys = {e["key"] for e in partial["cells"]}
    assert KILL_KEY not in completed_keys
    assert completed_keys <= all_keys
    assert (tmp_path / "fault.fired").exists()
    if mode == "exception":
        # Soft fault: pool survives, every other cell completes and the
        # victim is recorded failed.
        assert [f["key"] for f in partial["failed"]] == [KILL_KEY]
        assert completed_keys == all_keys - {KILL_KEY}
    else:
        # Hard fault: the pool broke, so in-flight siblings may be lost
        # too — but the equal-cost tie-break means the kill landed late.
        assert partial["counts"]["pending"] >= 1
        assert len(completed_keys) >= len(all_keys) - 3

    # Resume with the fault still armed: the once-marker disarms it.
    resumed = run_sweep(
        chaos_matrix(), jobs=2, sweep_dir=sweep_dir, resume=True
    )
    manifest = resumed.manifest

    # No cell ran twice: everything journalled replays (counted), and
    # only the never-completed remainder was computed.
    sources = {e["key"]: e["source"] for e in manifest["cells"]}
    assert set(sources) == all_keys
    assert {k for k, s in sources.items() if s == "journal"} == completed_keys
    assert {k for k, s in sources.items() if s == "computed"} == (
        all_keys - completed_keys
    )
    assert manifest["counts"]["journal_replays"] == len(completed_keys)
    assert manifest["counts"]["computed"] == len(all_keys) - len(
        completed_keys
    )
    assert manifest["counts"]["failed"] == 0

    # And recovery is exact: digests equal the uninterrupted run's.
    assert manifest["matrix_digest"] == reference.manifest["matrix_digest"]
    assert cells_signature(manifest) == cells_signature(reference.manifest)


def test_worker_fault_spec_roundtrip_and_fire_once(monkeypatch, tmp_path):
    spec = WorkerFaultSpec(
        cell="c", mode="exception", once_path=str(tmp_path / "m")
    )
    assert WorkerFaultSpec.from_env(spec.to_env()) == spec
    with pytest.raises(ValueError):
        WorkerFaultSpec(cell="c", mode="nonsense")

    monkeypatch.setenv(ENV_VAR, spec.to_env())
    # Wrong cell: no fire.
    check_worker_fault("other")
    assert not (tmp_path / "m").exists()
    # Right cell: fires exactly once, then the marker disarms it.
    with pytest.raises(WorkerFault):
        check_worker_fault("c")
    assert (tmp_path / "m").exists()
    check_worker_fault("c")  # second call is a no-op

    monkeypatch.delenv(ENV_VAR)
    check_worker_fault("c")  # unarmed: no-op
