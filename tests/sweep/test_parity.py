"""Determinism parity: sharding must not change results.

Runs the same mini matrix (fig4-style overload cells, seeds 3/17/33)
at ``--jobs`` 1, 2 and 4 in fresh sweep/cache directories and checks
the headline invariant of the sweep engine: byte-identical per-cell
result digests, an identical order-independent merged manifest, and
identical rendered artifact text.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_boxes
from repro.sweep import cells_signature, result_digest, run_sweep

from .util import MINI_SEEDS, mini_matrix


@pytest.fixture(scope="module")
def parity_runs(tmp_path_factory):
    spec = mini_matrix()
    runs = {}
    for jobs in (1, 2, 4):
        root = tmp_path_factory.mktemp(f"sweep-j{jobs}")
        runs[jobs] = run_sweep(spec, jobs=jobs, sweep_dir=root)
    return runs


def test_parity_per_cell_digests(parity_runs):
    serial = parity_runs[1]
    expected = {
        entry["key"]: entry["result_digest"]
        for entry in serial.manifest["cells"]
    }
    assert set(expected) == {f"mini-overload-s{seed}" for seed in MINI_SEEDS}
    for jobs, run in parity_runs.items():
        got = {
            entry["key"]: entry["result_digest"]
            for entry in run.manifest["cells"]
        }
        assert got == expected, f"jobs={jobs} changed a result digest"
        # The in-memory payloads hash to the digests the manifest claims.
        for key, payload in run.payloads.items():
            assert result_digest(payload) == expected[key]


def test_parity_merged_manifest(parity_runs):
    signatures = {
        jobs: cells_signature(run.manifest)
        for jobs, run in parity_runs.items()
    }
    assert signatures[1] == signatures[2] == signatures[4]
    digests = {
        run.manifest["matrix_digest"] for run in parity_runs.values()
    }
    assert len(digests) == 1
    for run in parity_runs.values():
        assert run.manifest["counts"]["computed"] == len(MINI_SEEDS)
        assert run.manifest["counts"]["failed"] == 0
        assert run.manifest["counts"]["pending"] == 0


def test_parity_rendered_artifact(parity_runs):
    def render(run):
        texts = []
        for key in sorted(run.payloads):
            times = {
                int(r): v
                for r, v in run.payloads[key]["exec_times_by_ranks"].items()
            }
            texts.append(
                render_boxes(
                    {f"{r} ranks": v for r, v in sorted(times.items())},
                    title=f"mini fig4 ({key})",
                )
            )
        return "\n\n".join(texts)

    reference = render(parity_runs[1])
    for jobs, run in parity_runs.items():
        assert render(run) == reference, f"jobs={jobs} changed rendered text"


def test_parity_across_seeds_not_trivial(parity_runs):
    # Guard against a degenerate matrix: different seeds really produce
    # different results (so the digest comparison above has teeth).
    digests = {
        entry["result_digest"]
        for entry in parity_runs[1].manifest["cells"]
    }
    assert len(digests) == len(MINI_SEEDS)
    payload = next(iter(parity_runs[1].payloads.values()))
    assert payload["num_application_tasks"] == 4
    assert np.isfinite(payload["makespan"])


def test_cache_hits_on_rerun(tmp_path):
    spec = mini_matrix(seeds=(3,))
    first = run_sweep(spec, jobs=2, sweep_dir=tmp_path)
    assert first.manifest["counts"]["computed"] == 1
    # Fresh run, same directory, no resume: journal resets but the
    # content-addressed cache still serves the result.
    second = run_sweep(spec, jobs=2, sweep_dir=tmp_path)
    assert second.manifest["counts"]["computed"] == 0
    assert second.manifest["counts"]["cache_hits"] == 1
    assert second.manifest["matrix_digest"] == first.manifest["matrix_digest"]
