"""Unit battery for the sweep building blocks.

Covers the pieces the parity/chaos invariants rest on: stable content
digests, atomic writes, torn-tail-tolerant journal loading, cache
corruption handling, and deterministic LPT planning.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.sweep import (
    CellSpec,
    Journal,
    ResultCache,
    SweepSpec,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    estimate_cost,
    plan_shards,
    result_digest,
    schedule_order,
)


# -- digests -----------------------------------------------------------


def test_cell_digest_is_stable_and_param_order_independent():
    a = CellSpec("k", "openfoam", 3, {"x": 1, "y": [1, 2]})
    b = CellSpec("other-key", "openfoam", 3, {"y": [1, 2], "x": 1})
    # Key is identity, not content: same (family, params, seed) -> same
    # digest regardless of key or dict insertion order.
    assert a.digest("code") == b.digest("code")
    # Any ingredient change moves the digest.
    assert a.digest("code") != a.digest("other-code")
    assert a.digest("code") != CellSpec("k", "openfoam", 4, a.params).digest("code")
    assert a.digest("code") != CellSpec("k", "ddmd", 3, a.params).digest("code")


def test_cell_rejects_unserializable_params():
    with pytest.raises(TypeError):
        CellSpec("k", "openfoam", 1, {"bad": object()})
    with pytest.raises(ValueError):
        CellSpec("", "openfoam", 1)


def test_result_digest_tracks_canonical_json():
    payload = {"b": 2.5, "a": [1, 2]}
    assert result_digest(payload) == result_digest({"a": [1, 2], "b": 2.5})
    assert result_digest(payload) != result_digest({"a": [2, 1], "b": 2.5})
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_sweep_spec_unique_keys_and_subset():
    cells = [CellSpec(f"c{i}", "openfoam", i) for i in range(3)]
    spec = SweepSpec(cells)
    assert len(spec) == 3
    assert spec["c1"].seed == 1
    assert [c.key for c in spec.subset({"c2", "c0"})] == ["c0", "c2"]
    with pytest.raises(KeyError):
        spec.subset({"nope"})
    with pytest.raises(ValueError):
        SweepSpec(cells + [CellSpec("c0", "openfoam", 9)])


# -- atomic writes + journal -------------------------------------------


def test_atomic_write_replaces_whole_file(tmp_path):
    target = tmp_path / "deep" / "out.txt"
    atomic_write_text(target, "first")
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    # No temp droppings left behind.
    assert os.listdir(target.parent) == ["out.txt"]
    atomic_write_json(tmp_path / "obj.json", {"a": 1})
    assert json.loads((tmp_path / "obj.json").read_text()) == {"a": 1}


def test_journal_append_load_roundtrip(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.reset()
    journal.append({"digest": "d1", "key": "a"})
    journal.append({"digest": "d2", "key": "b"})
    replay = Journal(tmp_path / "journal.jsonl").load()
    assert [e["digest"] for e in replay] == ["d1", "d2"]
    assert set(replay.completed_digests()) == {"d1", "d2"}
    replay.reset()
    assert len(Journal(tmp_path / "journal.jsonl").load()) == 0


def test_journal_load_tolerates_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    good = json.dumps({"digest": "d1", "key": "a"})
    path.write_text(good + "\n" + '{"digest": "d2", "key": ')
    journal = Journal(path).load()
    assert [e["digest"] for e in journal] == ["d1"]
    # ...but corruption *before* the tail is a real error.
    path.write_text('{"broken\n' + good + "\n")
    with pytest.raises(json.JSONDecodeError):
        Journal(path).load()


def test_cache_roundtrip_and_corruption_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    digest = "ab" + "0" * 62
    assert cache.get(digest) is None
    cache.put(digest, {"payload": {"x": 1}})
    record = cache.get(digest)
    assert record["payload"] == {"x": 1}
    assert digest in cache
    # Torn/corrupt record -> miss, not error.
    cache.path(digest).write_text('{"payload": ')
    assert cache.get(digest) is None
    # Record stored under the wrong digest -> miss (content check).
    other = "cd" + "0" * 62
    cache.path(other).parent.mkdir(parents=True, exist_ok=True)
    cache.path(other).write_text(json.dumps({"digest": digest}))
    assert cache.get(other) is None


# -- planner -----------------------------------------------------------


def _cells(costs: dict[str, float]) -> list[CellSpec]:
    # Drive estimate_cost through the openfoam instance heuristic so
    # each synthetic cell lands at a chosen cost (0.12 * instances).
    return [
        CellSpec(
            key,
            "openfoam",
            1,
            {"overrides": {"instances_per_config": cost / 0.12}},
        )
        for key, cost in costs.items()
    ]


def test_schedule_order_is_lpt_with_stable_ties():
    cells = _cells({"slow": 10.0, "fast": 1.0, "mid-b": 5.0, "mid-a": 5.0})
    order = [c.key for c in schedule_order(cells)]
    assert order == ["slow", "mid-a", "mid-b", "fast"]
    # Deterministic under input permutation.
    assert [c.key for c in schedule_order(list(reversed(cells)))] == order


def test_schedule_order_prefers_observed_walls():
    cells = _cells({"a": 1.0, "b": 5.0})
    digests = {c.key: c.digest("code") for c in cells}
    observed = {digests["a"]: 50.0}
    order = [c.key for c in schedule_order(cells, observed, digests)]
    assert order == ["a", "b"]


def test_plan_shards_balances_and_predicts():
    cells = _cells({"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0})
    plan = plan_shards(cells, 2)
    assert len(plan.shards) == 2
    assert sorted(c.key for shard in plan.shards for c in shard) == [
        "a", "b", "c", "d",
    ]
    # Greedy LPT on 4/3/2/1 over 2 workers: {a, d} vs {b, c}.
    assert plan.predicted_makespan == pytest.approx(5.0, rel=0.01)
    assert plan.serial_seconds == pytest.approx(10.0, rel=0.01)
    assert plan_shards(cells, 1).predicted_makespan == pytest.approx(
        plan.serial_seconds
    )
    with pytest.raises(ValueError):
        plan_shards(cells, 0)


def test_estimate_cost_covers_every_family():
    assert estimate_cost(CellSpec("t", "openfoam", 1, {})) > 0
    assert estimate_cost(
        CellSpec("s", "ddmd", 1, {"preset": "scaling_b", "pipelines": 128})
    ) > estimate_cost(
        CellSpec("s64", "ddmd", 1, {"preset": "scaling_b", "pipelines": 64})
    )
    assert estimate_cost(CellSpec("x", "ablation", 1, {})) > 0
    assert estimate_cost(CellSpec("u", "unknown-family", 1, {})) > 0
