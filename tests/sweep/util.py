"""Shared fixtures for the sweep test battery.

``mini_matrix`` is a deliberately small but *real* matrix — fig4-style
OpenFOAM overload cells shrunk to 2 instances per configuration on 4
nodes, two rank configurations, no TAU — one cell per seed.  Small
enough that the parity battery runs it at three job counts, real
enough that a payload digest covers actual simulation output.
"""

from __future__ import annotations

from repro.sweep import CellSpec, SweepSpec

MINI_SEEDS = (3, 17, 33)

MINI_OVERRIDES = {
    "instances_per_config": 2,
    "compute_nodes": 4,
    "rank_configs": [20, 41],
    "use_tau": False,
}


def mini_cell(seed: int, key: str | None = None) -> CellSpec:
    return CellSpec(
        key=key or f"mini-overload-s{seed}",
        family="openfoam",
        seed=seed,
        params={"experiment": "overload", "overrides": dict(MINI_OVERRIDES)},
    )


def mini_matrix(seeds=MINI_SEEDS) -> SweepSpec:
    return SweepSpec(mini_cell(seed) for seed in seeds)
