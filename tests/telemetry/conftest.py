"""Shared fixtures for the telemetry battery.

``traced_ddmd`` runs the DDMD tuning experiment once per session with
telemetry on and hands out the (result, hub) pair — the experiment
exercises every instrumented component (EnTK, RP client/agent, SOMA
client/service, monitors), so one run backs all export/bridge/analysis
assertions.
"""

from __future__ import annotations

import pytest

from repro.telemetry import drain_telemetries, set_default_telemetry

TRACED_SEED = 7


@pytest.fixture(scope="session")
def traced_ddmd():
    from repro.experiments import run_ddmd_experiment, tuning_experiment

    previous = set_default_telemetry(True)
    drain_telemetries()
    try:
        result = run_ddmd_experiment(tuning_experiment(), seed=TRACED_SEED)
    finally:
        set_default_telemetry(previous)
        hubs = drain_telemetries()
    assert len(hubs) == 1, "one Session => one telemetry hub"
    return result, hubs[0]
