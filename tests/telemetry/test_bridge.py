"""Tracer<->span bridge, span-native analysis, and span tables."""

from __future__ import annotations

from repro.sim import Environment
from repro.sim.trace import Tracer
from repro.telemetry import (
    Telemetry,
    drain_telemetries,
    install_tracer_sink,
    render_span_table,
    spans_to_trace_records,
    top_critical_spans,
)


def _pair():
    env = Environment()
    tel = Telemetry(env, enabled=True)
    tracer = Tracer(env)
    install_tracer_sink(tel, tracer)
    drain_telemetries()
    return env, tel, tracer


def test_disabled_hub_installs_no_sink():
    env = Environment()
    tel = Telemetry(env, enabled=False)
    tracer = Tracer(env)
    install_tracer_sink(tel, tracer)
    assert tracer.sink is None


def test_task_records_route_to_bound_span():
    env, tel, tracer = _pair()
    span = tel.start_span("task:task.0", component="rp-client")
    tel.bind("task.0", span)
    tracer.record("rp.state", "task.0", state="DONE")
    assert span.events == [(0.0, "rp.state:task.0", {"state": "DONE"})]
    # Stored once in the tracer, referenced (not copied) by the span.
    assert len(tracer.records) == 1
    assert tracer.records[0].data is span.events[0][2]
    assert tel.dropped_events == 0


def test_ambient_records_route_to_current_span():
    env, tel, tracer = _pair()
    with tel.span("phase", component="entk") as span:
        tracer.record("entk.stage", "stage.1", duration=4.0)
    assert span.events == [(0.0, "entk.stage:stage.1", {"duration": 4.0})]


def test_task_record_without_binding_falls_back_to_ambient():
    env, tel, tracer = _pair()
    with tel.span("phase", component="entk") as span:
        tracer.record("rp.state", "task.unknown", state="NEW")
    assert len(span.events) == 1


def test_homeless_records_are_counted_not_lost():
    env, tel, tracer = _pair()
    tracer.record("rp.pilot", "pilot.0", event="noise")
    assert tel.dropped_events == 1
    assert len(tracer.records) == 1  # the flat log still has it


def test_closed_bound_span_drops_to_ambient_then_counts():
    env, tel, tracer = _pair()
    span = tel.start_span("task:task.0", component="rp-client")
    tel.bind("task.0", span)
    tel.end_span(span)
    tracer.record("rp.state", "task.0", state="DONE")
    assert span.events == []
    assert tel.dropped_events == 1


def test_spans_to_trace_records_round_trip():
    env, tel, _tracer = _pair()

    def build():
        with tel.span("outer", component="a"):
            yield env.timeout(2.0)
            with tel.span("inner", component="b"):
                yield env.timeout(1.0)

    env.run(env.process(build()))
    records = spans_to_trace_records(tel)
    assert [r.name for r in records] == ["a:outer", "b:inner"]
    assert all(r.category == "telemetry.span" for r in records)
    outer, inner = records
    assert outer.time == 0.0 and inner.time == 2.0
    assert inner.data["parent_id"] == outer.data["span_id"]
    assert inner.data["duration"] == 1.0
    assert outer.data["closed"] and inner.data["closed"]


def test_top_critical_spans_ranked_by_self_time():
    env, tel, _tracer = _pair()

    def build():
        with tel.span("root", component="a"):  # dur 10, self 4
            yield env.timeout(1.0)
            with tel.span("mid", component="b"):  # dur 6, self 1
                yield env.timeout(1.0)
                with tel.span("leaf", component="c"):  # dur 5, self 5
                    yield env.timeout(5.0)
            yield env.timeout(3.0)

    env.run(env.process(build()))
    rows = top_critical_spans(tel, k=2)
    assert [r["name"] for r in rows] == ["leaf", "root"]
    assert rows[0]["self_time"] == 5.0
    assert rows[1]["self_time"] == 4.0
    assert all(r["root"] == "root" for r in rows)
    assert top_critical_spans(tel, k=0) == []


def test_render_span_table_shapes():
    env, tel, _tracer = _pair()
    tel.end_span(tel.start_span("x" * 40, component="c"))
    rows = top_critical_spans(tel)
    table = render_span_table(rows)
    lines = table.splitlines()
    assert lines[0].split() == [
        "component", "span", "root", "start", "dur", "self",
    ]
    assert "..." in lines[2]  # long names are elided
    assert render_span_table([]).endswith("(no spans)")


# -- full stack: the bridge during a real run -------------------------


def test_real_run_attaches_task_records_to_task_spans(traced_ddmd):
    result, hub = traced_ddmd
    session = result.session
    assert session.tracer.sink is not None
    roots = {
        span.attributes.get("uid"): span
        for span in hub.spans
        if span.name.startswith("task:")
    }
    some_task = next(iter(result.tasks))
    span = roots[some_task]
    state_events = [
        e for e in span.events if e[1].startswith("rp.state:")
    ]
    assert state_events, "task state records must land on the task span"
    # No double logging: each of those events aliases a stored tracer
    # record, not a copy.
    stored = {id(rec.data) for rec in session.tracer.records}
    assert all(id(e[2]) in stored for e in state_events)
