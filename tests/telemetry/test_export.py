"""Chrome trace-event export, validation, and flame summary."""

from __future__ import annotations

import json

from repro.sim import Environment
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    component_tracks,
    drain_telemetries,
    flame_summary,
    merge_chrome_traces,
    save_chrome_trace,
    validate_chrome_trace,
)

US = 1e6


def _hub() -> Telemetry:
    """A small deterministic span tree on a bare environment.

    root(a) [0..10] -> child(b) [2..5] with one annotation; plus an
    open span on track a.  Times are driven via a trivial process.
    """
    env = Environment()
    tel = Telemetry(env, enabled=True)

    def build():
        root = tel.start_span("root", component="a", activate=True, uid="r")
        yield env.timeout(2.0)
        child = tel.start_span("child", component="b")
        tel.add_event(child, "tick", n=1)
        yield env.timeout(3.0)
        tel.end_span(child)
        yield env.timeout(5.0)
        tel.end_span(root)
        tel.start_span("hanging", component="a")
        yield env.timeout(1.0)

    env.run(env.process(build()))
    drain_telemetries()
    return tel


def _events(doc, ph=None):
    return [
        e
        for e in doc["traceEvents"]
        if ph is None or e.get("ph") == ph
    ]


def test_chrome_trace_structure():
    doc = chrome_trace(_hub())
    assert validate_chrome_trace(doc) == []
    assert doc["displayTimeUnit"] == "ms"

    meta = _events(doc, "M")
    names = {e["name"] for e in meta}
    assert names == {"process_name", "thread_name"}
    assert component_tracks(doc) == ["a", "b"]

    complete = _events(doc, "X")
    by_name = {e["name"]: e for e in complete}
    root = by_name["root"]
    assert root["ts"] == 0.0 and root["dur"] == 10.0 * US
    assert root["cat"] == "a"
    assert root["args"]["uid"] == "r"
    assert "parent_id" not in root["args"]
    child = by_name["child"]
    assert child["ts"] == 2.0 * US and child["dur"] == 3.0 * US
    assert child["args"]["parent_id"] == root["args"]["span_id"]
    # The two components sit on distinct thread tracks.
    assert root["tid"] != child["tid"]


def test_open_spans_are_clamped_and_flagged():
    hub = _hub()
    doc = chrome_trace(hub)
    hanging = next(
        e for e in _events(doc, "X") if e["name"] == "hanging"
    )
    assert hanging["args"]["unfinished"] is True
    assert hanging["ts"] == 10.0 * US
    assert hanging["dur"] == 1.0 * US  # clamped to env.now
    # Export never mutates the span itself.
    assert hub.open_spans()[0].end is None


def test_annotations_become_instant_events():
    doc = chrome_trace(_hub())
    (instant,) = _events(doc, "i")
    assert instant["name"] == "tick"
    assert instant["s"] == "t"
    assert instant["ts"] == 2.0 * US
    assert instant["args"]["n"] == 1


def test_metrics_become_counter_events():
    reg = MetricsRegistry()
    reg.counter("soma.client.published").inc(5)
    reg.histogram("ignored").observe(1.0)
    doc = chrome_trace(_hub(), metrics=reg)
    (counter,) = _events(doc, "C")
    assert counter["name"] == "soma.client.published"
    assert counter["args"] == {"value": 5.0}
    assert validate_chrome_trace(doc) == []


def test_merge_keeps_per_hub_pids():
    a, b = chrome_trace(_hub(), pid=1), chrome_trace(_hub(), pid=2)
    merged = merge_chrome_traces([a, b])
    assert validate_chrome_trace(merged) == []
    pids = {e["pid"] for e in merged["traceEvents"]}
    assert pids == {1, 2}
    assert len(merged["traceEvents"]) == len(a["traceEvents"]) * 2


def test_save_writes_compact_json(tmp_path):
    doc = chrome_trace(_hub())
    path = save_chrome_trace(tmp_path / "deep" / "trace.json", doc)
    text = path.read_text()
    assert text.endswith("\n")
    assert ": " not in text  # compact separators
    assert json.loads(text) == doc


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def problems(event):
        return validate_chrome_trace({"traceEvents": [event]})

    ok = {
        "name": "s",
        "cat": "c",
        "ph": "X",
        "ts": 0,
        "dur": 1,
        "pid": 1,
        "tid": 1,
        "args": {"span_id": 1},
    }
    assert problems(ok) == []
    assert problems(dict(ok, ph="Q"))  # unknown phase
    assert problems(dict(ok, name=""))  # empty name
    assert problems(dict(ok, pid="one"))  # non-int pid
    assert problems(dict(ok, ts=-5))  # negative timestamp
    assert problems(dict(ok, dur=None))  # X needs dur
    assert problems({**ok, "args": {"span_id": 1, "parent_id": 99}})
    assert problems(
        {"name": "i", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "q"}
    )
    assert problems(
        {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 1,
         "args": {"v": "NaNish"}}
    )
    assert problems(
        {"name": "bogus", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "x"}}
    )


def test_flame_summary_orders_by_self_time():
    text = flame_summary(_hub())
    lines = text.splitlines()
    assert lines[0].startswith("flame summary")
    rows = lines[3:]
    # root: dur 10 minus child 3 => self 7; child: 3; hanging: 1.
    assert rows[0].split()[:2] == ["a", "root"]
    assert rows[1].split()[:2] == ["b", "child"]
    assert rows[2].split()[:2] == ["a", "hanging"]
    assert "7.0000" in rows[0]
    assert "3.0000" in rows[1]


def test_flame_summary_empty_hub():
    env = Environment()
    tel = Telemetry(env, enabled=True)
    drain_telemetries()
    assert "(no spans recorded)" in flame_summary(tel)


# -- against a real run ------------------------------------------------


def test_real_run_exports_validate(traced_ddmd):
    _result, hub = traced_ddmd
    doc = chrome_trace(hub)
    assert validate_chrome_trace(doc) == []
    tracks = component_tracks(doc)
    assert len(tracks) >= 4
    assert {"entk", "rp-client", "rp-agent", "soma-service"} <= set(tracks)
