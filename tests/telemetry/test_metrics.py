"""Unit tests for the metrics registry and counter absorption."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_kernel_counters,
    absorb_session,
    geometric_bounds,
)
from repro.telemetry.metrics import DEFAULT_BOUNDS, observe_all


# -- bucket ladder -----------------------------------------------------


def test_geometric_bounds_deterministic_and_increasing():
    a = geometric_bounds(1e-6, 1e5, 4.0)
    b = geometric_bounds(1e-6, 1e5, 4.0)
    assert a == b == DEFAULT_BOUNDS
    assert all(x < y for x, y in zip(a, a[1:]))
    assert a[0] == 1e-6
    assert a[-1] >= 1e5


@pytest.mark.parametrize(
    "lo,hi,growth", [(0.0, 1.0, 2.0), (1.0, 0.5, 2.0), (1.0, 2.0, 1.0)]
)
def test_geometric_bounds_rejects_bad_arguments(lo, hi, growth):
    with pytest.raises(ValueError):
        geometric_bounds(lo, hi, growth)


# -- metric primitives -------------------------------------------------


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.snapshot() == {"type": "counter", "value": 3.5}


def test_gauge_tracks_extremes():
    g = Gauge("g")
    g.set(5.0)
    g.set(-2.0)
    g.set(3.0)
    assert (g.value, g.min, g.max) == (3.0, -2.0, 5.0)
    assert g.snapshot()["min"] == -2.0


def test_gauge_first_set_defines_both_extremes():
    g = Gauge("g")
    g.set(7.0)
    assert (g.min, g.max) == (7.0, 7.0)


def test_histogram_bucketing_and_overflow():
    h = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(value)
    # Bucket i holds bounds[i-1] <= v < bounds[i]; last slot is overflow.
    assert h.counts == [1, 2, 1, 1]
    assert h.count == 5
    assert h.sum == 556.5
    assert (h.min, h.max) == (0.5, 500.0)
    assert h.mean == pytest.approx(556.5 / 5)


def test_histogram_quantiles_are_bucket_bounds():
    h = Histogram("h", bounds=(1.0, 10.0, 100.0))
    observe_all(h, [0.5, 2.0, 3.0, 20.0])
    assert h.quantile(0.25) == 1.0
    assert h.quantile(0.75) == 10.0
    assert h.quantile(1.0) == 100.0
    h.observe(5000.0)  # overflow bucket resolves to the exact max
    assert h.quantile(1.0) == 5000.0
    with pytest.raises(ValueError):
        h.quantile(0.0)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0, 2.0))


def test_histogram_memory_independent_of_observations():
    h = Histogram("h")
    for i in range(10_000):
        h.observe(i * 0.01)
    assert len(h.counts) == len(h.bounds) + 1


# -- registry ----------------------------------------------------------


def test_registry_get_or_create_and_type_guard():
    reg = MetricsRegistry()
    c = reg.counter("a")
    assert reg.counter("a") is c
    with pytest.raises(TypeError):
        reg.gauge("a")
    assert "a" in reg
    assert len(reg) == 1
    assert reg.get("missing") is None


def test_registry_snapshot_is_name_sorted():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.gauge("a").set(1.0)
    reg.histogram("m").observe(2.0)
    snap = reg.snapshot()
    assert list(snap) == ["a", "m", "z"]
    assert snap["z"]["type"] == "counter"
    assert snap["m"]["type"] == "histogram"


def test_scalar_values_excludes_histograms():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.gauge("g").set(4.0)
    reg.histogram("h").observe(5.0)
    assert reg.scalar_values() == {"c": 3.0, "g": 4.0}


# -- absorption --------------------------------------------------------


def test_absorb_kernel_counters(env):
    def proc():
        yield env.timeout(1.0)

    env.run(env.process(proc()))
    reg = MetricsRegistry()
    absorb_kernel_counters(reg, env)
    for key, value in env.kernel_counters().items():
        metric = reg.get(f"kernel.{key}")
        assert metric is not None and metric.value == value


def test_absorb_session_covers_the_stack(traced_ddmd):
    result, _hub = traced_ddmd
    reg = MetricsRegistry()
    absorb_session(reg, result.session, result.client, result.deployment)
    names = reg.names()
    assert "kernel.events_executed" in names
    assert "rp.scheduler.scheduled" in names
    assert "rp.executor.completed" in names
    assert "soma.client.published" in names
    assert "soma.service.publishes" in names
    task_hist = reg.get("rp.task.duration")
    assert isinstance(task_hist, Histogram)
    assert task_hist.count == len(
        [t for t in result.tasks.values() if t.execution_time is not None]
    )
    assert task_hist.count > 0
    # Absorption is read-only and repeatable: a second registry sees
    # identical values.
    again = MetricsRegistry()
    absorb_session(again, result.session, result.client, result.deployment)
    assert again.snapshot() == reg.snapshot()
