"""Unit tests for the span model and context propagation machinery."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Interrupt
from repro.telemetry import (
    SpanContext,
    Telemetry,
    active_telemetries,
    default_telemetry,
    drain_telemetries,
    set_default_telemetry,
)


@pytest.fixture
def tel(env):
    hub = Telemetry(env, enabled=True)
    yield hub
    drain_telemetries()


# -- enable/disable and registry --------------------------------------


def test_disabled_hub_is_inert(env):
    hub = Telemetry(env, enabled=False)
    assert not hub.enabled
    assert getattr(env, "_telemetry", None) is None
    assert hub not in active_telemetries()
    assert hub.start_span("x", component="c") is None
    hub.end_span(None)
    hub.event("nothing")
    hub.bind("uid", None)
    with hub.span("y", component="c") as span:
        assert span is None
    assert hub.spans == []
    assert hub.counters()["spans_started"] == 0


def test_enabled_hub_registers_and_drains(env):
    hub = Telemetry(env, enabled=True)
    assert env._telemetry is hub
    assert hub in active_telemetries()
    assert drain_telemetries() == [hub]
    assert active_telemetries() == []


def test_default_telemetry_process_wide(env):
    previous = set_default_telemetry(True)
    try:
        hub = Telemetry(env)
        assert hub.enabled
    finally:
        set_default_telemetry(previous)
        drain_telemetries()


def test_default_telemetry_env_var(monkeypatch):
    set_default_telemetry(None)
    monkeypatch.setenv("REPRO_TELEMETRY", "yes")
    assert default_telemetry()
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert not default_telemetry()
    monkeypatch.delenv("REPRO_TELEMETRY")
    assert not default_telemetry()


# -- span lifecycle ----------------------------------------------------


def test_root_then_child_adopts_ambient(tel):
    root = tel.start_span("root", component="a", activate=True)
    child = tel.start_span("child", component="b")
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert child.trace_id == root.trace_id
    tel.end_span(child)
    tel.end_span(root)
    assert tel.counters()["open_spans"] == 0


def test_sibling_roots_get_distinct_traces(tel):
    a = tel.start_span("a", component="c")
    b = tel.start_span("b", component="c")
    assert a.trace_id != b.trace_id
    assert tel.trace_ids() == [a.trace_id, b.trace_id]


def test_explicit_parent_beats_ambient(tel):
    other = tel.start_span("other", component="c")
    ambient = tel.start_span("ambient", component="c", activate=True)
    child = tel.start_span("child", component="c", parent=other)
    assert child.parent_id == other.span_id
    assert child.trace_id == other.trace_id
    assert ambient.trace_id != other.trace_id


def test_parent_accepts_context_and_span(tel):
    parent = tel.start_span("p", component="c")
    via_span = tel.start_span("a", component="c", parent=parent)
    via_ctx = tel.start_span("b", component="c", parent=parent.context)
    assert via_span.parent_id == via_ctx.parent_id == parent.span_id


def test_span_ids_are_deterministic_counters(tel):
    spans = [tel.start_span(f"s{i}", component="c") for i in range(5)]
    assert [s.span_id for s in spans] == [1, 2, 3, 4, 5]


def _sleep(env, seconds):
    yield env.timeout(seconds)


def test_end_span_records_now_and_attributes(env, tel):
    span = tel.start_span("s", component="c", uid="t1")
    env.run(env.process(_sleep(env, 4.0)))
    tel.end_span(span, state="DONE")
    assert span.end == 4.0
    assert span.duration() == 4.0
    assert span.attributes == {"uid": "t1", "state": "DONE"}


def test_double_close_is_counted_not_applied(env, tel):
    span = tel.start_span("s", component="c")
    tel.end_span(span)
    first_end = span.end
    env.run(env.process(_sleep(env, 1.0)))
    tel.end_span(span)
    assert span.end == first_end
    assert tel.double_closes == 1


def test_open_span_duration_clamps_to_now(env, tel):
    span = tel.start_span("s", component="c")
    env.run(env.process(_sleep(env, 2.5)))
    assert span.duration() == 0.0  # no clock supplied
    assert span.duration(env.now) == 2.5
    assert tel.open_spans() == [span]


def test_activation_stack_pops_on_close(tel):
    with tel.span("outer", component="c") as outer:
        assert tel.current() == outer.context
        with tel.span("inner", component="c") as inner:
            assert tel.current() == inner.context
        assert tel.current() == outer.context
    assert tel.current() is None


def test_use_temporarily_switches_context(tel):
    ctx = SpanContext(trace_id=9, span_id=42)
    with tel.use(ctx):
        assert tel.current() == ctx
        child = tel.start_span("c", component="c")
        assert child.parent_id == 42
        assert child.trace_id == 9
    assert tel.current() is None


# -- process integration ----------------------------------------------


def test_spawned_process_inherits_context(env, tel):
    seen = {}

    def child():
        seen["ctx"] = tel.current()
        yield env.timeout(1.0)

    def parent():
        with tel.span("parent", component="c") as span:
            env.process(child())
            seen["parent"] = span.context
            yield env.timeout(2.0)

    env.run(env.process(parent()))
    assert seen["ctx"] == seen["parent"]


def test_span_closes_exactly_once_on_interrupt(env, tel):
    def victim():
        try:
            with tel.span("work", component="c"):
                yield env.timeout(100.0)
        except Interrupt:
            pass

    def killer(proc):
        yield env.timeout(3.0)
        proc.interrupt("cancel")

    proc = env.process(victim())
    env.process(killer(proc))
    env.run(proc)
    (span,) = tel.spans
    assert span.end == 3.0
    assert tel.double_closes == 0
    assert tel.counters()["open_spans"] == 0


def test_process_exit_drops_ambient_stack(env, tel):
    def worker():
        tel.start_span("w", component="c", activate=True)
        yield env.timeout(1.0)

    proc = env.process(worker())
    env.run(proc)
    assert proc not in tel._ambient


# -- annotations and bindings -----------------------------------------


def test_event_lands_on_current_open_span(env, tel):
    with tel.span("s", component="c") as span:
        tel.event("tick", n=1)
    assert span.events == [(0.0, "tick", {"n": 1})]
    assert tel.dropped_events == 0


def test_event_without_span_is_dropped_and_counted(tel):
    tel.event("orphan")
    assert tel.dropped_events == 1


def test_event_on_closed_context_is_dropped(tel):
    span = tel.start_span("s", component="c")
    with tel.use(span.context):
        tel.end_span(span)
        tel.event("late")
    assert span.events == []
    assert tel.dropped_events == 1


def test_add_event_targets_specific_span(tel):
    span = tel.start_span("s", component="c")
    tel.add_event(span, "mark", k="v")
    assert span.events == [(0.0, "mark", {"k": "v"})]


def test_bindings_are_durable_until_unbound(tel):
    span = tel.start_span("task", component="c")
    tel.bind("task.0", span)
    assert tel.binding("task.0") == span.context
    tel.end_span(span)
    assert tel.binding("task.0") == span.context  # survives close
    tel.unbind("task.0")
    assert tel.binding("task.0") is None


def test_counters_snapshot(tel):
    a = tel.start_span("a", component="c")
    tel.start_span("b", component="c")
    tel.end_span(a)
    tel.end_span(a)
    tel.event("orphanless")
    counters = tel.counters()
    assert counters == {
        "spans_started": 2,
        "spans_closed": 1,
        "open_spans": 1,
        "double_closes": 1,
        "dropped_events": 1,
        "traces": 2,
    }
