"""The ``repro trace`` subcommand and the sweep ``--telemetry`` flag."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import component_tracks, validate_chrome_trace


def test_trace_requires_known_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "bogus"])


def test_trace_openfoam_exports_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "of.trace.json"
    assert main(["trace", "openfoam", "--seed", "3", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "flame summary" in text
    assert "top critical-path spans" in text
    assert "component tracks" in text
    document = json.loads(out.read_text())
    assert validate_chrome_trace(document) == []
    assert len(component_tracks(document)) >= 4


def test_trace_ddmd_covers_the_whole_stack(tmp_path, capsys):
    """One complete task lifecycle: >= 4 causally linked component tracks."""
    out = tmp_path / "ddmd.trace.json"
    assert main(["trace", "ddmd", "--seed", "7", "--out", str(out),
                 "--top", "5"]) == 0
    document = json.loads(out.read_text())
    assert validate_chrome_trace(document) == []
    tracks = set(component_tracks(document))
    assert {"entk", "rp-client", "rp-agent", "soma-client",
            "soma-service"} <= tracks

    spans = [
        e for e in document["traceEvents"] if e.get("ph") == "X"
    ]
    by_id = {e["args"]["span_id"]: e for e in spans}
    tid_component = {
        e["tid"]: e["args"]["name"]
        for e in document["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    def chain_from(event):
        chain = []
        cursor = event
        while cursor is not None:
            chain.append(tid_component[cursor["tid"]])
            parent = cursor["args"].get("parent_id")
            cursor = by_id.get(parent) if parent is not None else None
        return chain

    # A SOMA serve span walks back through the client, the monitor task
    # and the agent to the monitor's task span: >= 4 component tracks
    # causally linked in one trace.
    serve = next(e for e in spans if e["name"].startswith("rpc.serve:"))
    serve_chain = chain_from(serve)
    assert len(set(serve_chain)) >= 4, serve_chain
    assert serve_chain[0] == "soma-service"
    assert serve_chain[-1] == "rp-client", "monitor tasks root at RP"

    # Application tasks root all the way up at the EnTK pipeline.
    execute_chains = [
        chain_from(e) for e in spans if e["name"] == "agent.execute"
    ]
    entk_rooted = [c for c in execute_chains if c[-1] == "entk"]
    assert entk_rooted, "EnTK-submitted tasks trace back to the pipeline"
    assert all(len(set(c)) >= 3 for c in entk_rooted)


def _sweep_argv(tmp_path, tag):
    return [
        "sweep",
        "--filter", "openfoam-tuning",
        "--dir", str(tmp_path / f"sweep-{tag}"),
        "--results-dir", str(tmp_path / f"results-{tag}"),
        "--manifest", str(tmp_path / f"manifest-{tag}.json"),
        "--no-artifacts",
    ]


def test_sweep_telemetry_flag_writes_per_cell_traces(tmp_path, capsys):
    assert main(_sweep_argv(tmp_path, "traced") + ["--telemetry"]) == 0
    out = capsys.readouterr().out
    assert "cell trace(s) under" in out
    trace_path = (
        tmp_path / "sweep-traced" / "traces" / "openfoam-tuning.trace.json"
    )
    assert trace_path.exists()
    document = json.loads(trace_path.read_text())
    assert validate_chrome_trace(document) == []
    assert len(component_tracks(document)) >= 3

    # An independent untraced sweep (fresh cache) computes the same
    # payload digest: zero perturbation holds through the sweep path.
    assert main(_sweep_argv(tmp_path, "plain")) == 0
    capsys.readouterr()

    def digest(tag):
        manifest = json.loads(
            (tmp_path / f"manifest-{tag}.json").read_text()
        )
        (entry,) = manifest["cells"]
        assert entry["source"] == "computed"
        return entry["result_digest"]

    assert digest("traced") == digest("plain")
