"""The zero-perturbation contract, enforced differentially.

Telemetry on must be invisible to the simulation: for the same seed,
the full event-trace digest, every kernel counter, and the finish time
are byte-identical with the span machinery enabled and disabled.  Any
instrumentation that schedules an event, draws randomness, or perturbs
iteration order breaks one of these digests for some seed.
"""

from __future__ import annotations

import hashlib

from repro.experiments import (
    TUNING,
    run_ddmd_experiment,
    run_openfoam_experiment,
    tuning_experiment,
)
from repro.sweep.spec import result_digest
from repro.telemetry import drain_telemetries, set_default_telemetry

from tests.faults.harness import metric_signature, trace_signature

SEEDS = (3, 17, 33)


def _fingerprint(result) -> tuple[str, dict, float]:
    signature = trace_signature(result.session)
    digest = hashlib.sha256(signature.encode()).hexdigest()
    return digest, dict(result.session.env.kernel_counters()), result.finished_at


def _differential(run, telemetry_expected_spans=True):
    previous = set_default_telemetry(False)
    try:
        baseline = _fingerprint(run())
        assert drain_telemetries() == []
        set_default_telemetry(True)
        result = run()
        traced = _fingerprint(result)
        hubs = drain_telemetries()
    finally:
        set_default_telemetry(previous)
        drain_telemetries()
    assert len(hubs) == 1
    hub = hubs[0]
    if telemetry_expected_spans:
        assert hub.spans, "telemetry on must actually record spans"
        assert hub.double_closes == 0
    return baseline, traced


def test_openfoam_trace_is_byte_identical_per_seed():
    for seed in SEEDS:
        baseline, traced = _differential(
            lambda: run_openfoam_experiment(TUNING, seed=seed)
        )
        assert baseline[0] == traced[0], f"trace digest drifted (seed {seed})"
        assert baseline[1] == traced[1], (
            f"kernel counters drifted (seed {seed})"
        )
        assert baseline[2] == traced[2], f"finish time drifted (seed {seed})"


def test_ddmd_trace_is_byte_identical():
    import itertools

    from repro.entk.pipeline import Pipeline
    from repro.entk.stage import Stage

    def run():
        # EnTK uids come from process-global counters; pin them so the
        # two runs are comparable (run-order, not telemetry, state).
        Pipeline._ids = itertools.count()
        Stage._ids = itertools.count()
        return run_ddmd_experiment(tuning_experiment(), seed=3)

    baseline, traced = _differential(run)
    assert baseline == traced


def _provenance_differential(run):
    """Baseline (everything off) vs telemetry + provenance capture on.

    Returns ``(baseline, captured)`` where each element also carries
    the SOMA store signature — the provenance store taps must not
    change what lands in any namespace store, not just the trace.
    """
    from repro.provenance import set_default_provenance

    prev_tel = set_default_telemetry(False)
    prev_prov = set_default_provenance(False)
    try:
        base_result = run()
        baseline = (*_fingerprint(base_result), metric_signature(base_result.deployment))
        assert drain_telemetries() == []
        set_default_telemetry(True)
        set_default_provenance(True)
        result = run()
        captured = (*_fingerprint(result), metric_signature(result.deployment))
        hubs = drain_telemetries()
    finally:
        set_default_telemetry(prev_tel)
        set_default_provenance(prev_prov)
        drain_telemetries()
    assert len(hubs) == 1
    hub = hubs[0]
    assert hub.provenance is not None, "capture must ride the enabled hub"
    counters = hub.provenance.counters()
    assert sum(counters.values()) > 0, "capture must actually record notes"
    return baseline, captured


def test_openfoam_provenance_is_byte_identical_per_seed():
    for seed in SEEDS:
        baseline, captured = _provenance_differential(
            lambda: run_openfoam_experiment(TUNING, seed=seed)
        )
        assert baseline == captured, (
            f"provenance capture perturbed the run (seed {seed})"
        )


def test_ddmd_provenance_is_byte_identical_per_seed():
    import itertools

    from repro.entk.pipeline import Pipeline
    from repro.entk.stage import Stage

    for seed in SEEDS:

        def run(seed=seed):
            Pipeline._ids = itertools.count()
            Stage._ids = itertools.count()
            return run_ddmd_experiment(tuning_experiment(), seed=seed)

        baseline, captured = _provenance_differential(run)
        assert baseline == captured, (
            f"provenance capture perturbed the run (seed {seed})"
        )


def test_sweep_cell_payload_digest_is_identical():
    """The sweep-visible result digest cannot depend on telemetry."""
    from repro.experiments.harness import run_cell

    previous = set_default_telemetry(False)
    try:
        off = result_digest(run_cell("ddmd", {"preset": "tuning"}, 3))
        set_default_telemetry(True)
        on = result_digest(run_cell("ddmd", {"preset": "tuning"}, 3))
    finally:
        set_default_telemetry(previous)
        drain_telemetries()
    assert off == on
