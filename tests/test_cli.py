"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "summit-like" in out


def test_openfoam_tuning(capsys):
    assert main(["openfoam", "--experiment", "tuning", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "20 ranks" in out


def test_ddmd_tuning(capsys):
    assert main(["ddmd", "--experiment", "tuning", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "simulation" in out
    assert "training" in out


def test_scaling_small(capsys):
    assert (
        main(
            [
                "scaling",
                "--pipelines",
                "4",
                "--modes",
                "none",
                "exclusive",
                "--seed",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "pipeline runtimes" in out
    assert "vs baseline" in out


def test_facility_smoke(capsys):
    assert (
        main(
            [
                "facility",
                "--pilots",
                "8",
                "--shards",
                "2",
                "--service-nodes",
                "2",
                "--tasks-per-pilot",
                "40",
                "--concurrency",
                "4",
                "--period",
                "30",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "stalled tasks" in out
    assert "task samples generated" in out
    assert "Per-shard store occupancy" in out


def test_facility_json_with_chaos(capsys):
    import json

    assert (
        main(
            [
                "facility",
                "--pilots",
                "8",
                "--shards",
                "2",
                "--service-nodes",
                "2",
                "--tasks-per-pilot",
                "80",
                "--concurrency",
                "4",
                "--period",
                "30",
                "--admission-rate",
                "0.5",
                "--chaos",
                "--json",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["stalled_tasks"] == 0
    assert payload["faults_applied"] == 2
    assert payload["samples_generated"] == 8 * 80


def test_bad_mode_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scaling", "--modes", "bogus"])


def test_sweep_list(capsys):
    assert main(["sweep", "--list", "--jobs", "4"]) == 0
    out = capsys.readouterr().out
    assert "predicted makespan" in out
    assert "shard 3:" in out
    assert "fig4" in out and "table1" in out


def test_sweep_filter_runs_and_renders(tmp_path, capsys):
    manifest_path = tmp_path / "manifest.json"
    assert (
        main(
            [
                "sweep",
                "--jobs",
                "2",
                "--filter",
                "table1",
                "--dir",
                str(tmp_path / "sweep"),
                "--results-dir",
                str(tmp_path / "results"),
                "--manifest",
                str(manifest_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sweep manifest" in out
    assert manifest_path.exists()
    table1 = (tmp_path / "results" / "table1.txt").read_text()
    assert table1.startswith("Table 1: OpenFOAM Experiment Summary")


def test_sweep_unknown_filter_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--filter", "no-such-artifact", "--dir", str(tmp_path)])


def test_bottleneck_scenario(capsys):
    assert main(["bottleneck", "oversubscribed", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "cpu_oversubscription" in out
    assert "[ok]" in out


def test_bottleneck_clean_scenario_reports_quiet(capsys):
    assert main(["bottleneck", "clean", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out


def test_bottleneck_json(capsys):
    import json

    assert main(["bottleneck", "imbalance", "--seed", "42", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report[0]["scenario"] == "imbalance"
    assert report[0]["ok"] is True
    assert report[0]["findings"][0]["kind"] == "load_imbalance"


def test_bottleneck_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["bottleneck", "no-such-scenario"])


def test_bottleneck_margin_requires_calibrate():
    with pytest.raises(SystemExit):
        main(["bottleneck", "clean", "--margin", "2.0"])
