"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "summit-like" in out


def test_openfoam_tuning(capsys):
    assert main(["openfoam", "--experiment", "tuning", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "20 ranks" in out


def test_ddmd_tuning(capsys):
    assert main(["ddmd", "--experiment", "tuning", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "simulation" in out
    assert "training" in out


def test_scaling_small(capsys):
    assert (
        main(
            [
                "scaling",
                "--pipelines",
                "4",
                "--modes",
                "none",
                "exclusive",
                "--seed",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "pipeline runtimes" in out
    assert "vs baseline" in out


def test_bad_mode_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scaling", "--modes", "bogus"])
