"""DDMD mini-app model: stages, GPU residency, parallel training."""

import pytest

from repro.platform import summit_like
from repro.rp import Client, PilotDescription, Session
from repro.workloads import DDMDParams, STAGE_NAMES, ddmd_phase_stages


class TestParams:
    def test_parallel_training_reduces_per_worker_time(self):
        params = DDMDParams()
        t1 = params.train_gpu_seconds_parallel(1)
        t4 = params.train_gpu_seconds_parallel(4)
        assert t4 < t1
        # But not perfectly: reduce overhead.
        assert t4 > t1 / 4

    def test_phase_critical_path_counts_sim_waves(self):
        params = DDMDParams(num_sim_tasks=12)
        two_waves = params.phase_critical_path(gpus_per_node=6)
        one_wave = params.phase_critical_path(gpus_per_node=12)
        assert two_waves - one_wave == pytest.approx(params.sim_gpu_seconds)

    def test_with_updates(self):
        params = DDMDParams().with_updates(num_train_tasks=4)
        assert params.num_train_tasks == 4


class TestStageConstruction:
    def test_four_stages_in_order(self):
        stages = ddmd_phase_stages(DDMDParams())
        assert [name for name, _ in stages] == list(STAGE_NAMES)

    def test_task_counts(self):
        params = DDMDParams(num_sim_tasks=12, num_train_tasks=2)
        stages = dict(ddmd_phase_stages(params))
        assert len(stages["simulation"]) == 12
        assert len(stages["training"]) == 2
        assert len(stages["selection"]) == 1
        assert len(stages["agent"]) == 1

    def test_resource_geometry(self):
        params = DDMDParams(cores_per_sim_task=3)
        stages = dict(ddmd_phase_stages(params))
        sim = stages["simulation"][0]
        assert sim.gpus_per_rank == 1
        assert sim.cores_per_rank == 3
        assert not sim.multi_node
        selection = stages["selection"][0]
        assert selection.gpus_per_rank == 0

    def test_metadata_tags(self):
        stages = ddmd_phase_stages(DDMDParams(), phase_index=2, pipeline=7)
        for _, tasks in stages:
            for td in tasks:
                assert td.metadata["phase"] == 2
                assert td.metadata["pipeline"] == 7


def run_phase(params, nodes=2, seed=2):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        results = {}
        for name, tds in ddmd_phase_stages(params):
            start = env.now
            tasks = client.submit_tasks(tds)
            yield from client.wait_tasks(tasks)
            results[name] = (env.now - start, tasks)
        return results

    results = env.run(env.process(main(env)))
    client.close()
    return results


class TestExecution:
    def test_phase_runs_and_stage_order_holds(self):
        results = run_phase(DDMDParams())
        assert set(results) == set(STAGE_NAMES)
        for name, (duration, tasks) in results.items():
            assert duration > 0
            assert all(t.state == "DONE" for t in tasks)

    def test_sim_stage_runs_in_two_waves(self):
        """12 GPUs needed, 12 available on 2 nodes: one wave; on 1
        node (6 GPUs): two waves."""
        params = DDMDParams(noise_sigma=0.0)
        two_nodes = run_phase(params, nodes=2)
        one_node = run_phase(params, nodes=1)
        assert (
            one_node["simulation"][0]
            > two_nodes["simulation"][0] + params.sim_gpu_seconds * 0.7
        )

    def test_gpu_bound_low_cpu_utilization(self):
        """Fig 9: GPU does the work; CPU utilization stays low."""
        session = Session(cluster_spec=summit_like(3), seed=2)
        client = Client(session)
        env = session.env
        params = DDMDParams()

        def main(env):
            pilot = yield from client.submit_pilot(
                PilotDescription(nodes=2, agent_nodes=1)
            )
            stages = ddmd_phase_stages(params)
            sim_tasks = client.submit_tasks(dict(stages)["simulation"])
            yield from client.wait_tasks(sim_tasks)
            return pilot

        pilot = env.run(env.process(main(env)))
        for node in pilot.compute_nodes:
            elapsed = env.now
            cpu_util = node.busy_cores.integral / (elapsed * node.total_cores)
            gpu_util = node.busy_gpus.integral / (elapsed * node.total_gpus)
            assert cpu_util < 0.25
            assert gpu_util > cpu_util
        client.close()

    def test_profiles_report_gpu_kernel(self):
        results = run_phase(DDMDParams())
        _, sim_tasks = results["simulation"]
        profile = sim_tasks[0].result.rank_profiles[0]
        assert profile.seconds_by_region["gpu_kernel"] > 0
