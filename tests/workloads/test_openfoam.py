"""OpenFOAM task model: scaling shape, profiles, contention."""

import math


from repro.platform import summit_like
from repro.rp import Client, PilotDescription, Session
from repro.workloads import (
    OpenFOAMParams,
    openfoam_task_description,
)


class TestAnalyticModel:
    def test_strong_scaling_monotone_over_paper_configs(self):
        params = OpenFOAMParams()
        times = [
            params.ideal_time(r, math.ceil(r / 41)) for r in (20, 41, 82, 164)
        ]
        assert times == sorted(times, reverse=True)

    def test_saturation_beyond_two_nodes(self):
        """Fig 4: limited benefit scaling 82 -> 164 ranks."""
        params = OpenFOAMParams()
        t82 = params.ideal_time(82, 2)
        t164 = params.ideal_time(164, 4)
        gain_82_164 = (t82 - t164) / t82
        t41 = params.ideal_time(41, 1)
        gain_41_82 = (t41 - t82) / t41
        assert gain_82_164 < gain_41_82
        assert gain_82_164 < 0.25

    def test_comm_grows_with_ranks(self):
        params = OpenFOAMParams()
        assert params.comm_seconds(164, 4) > params.comm_seconds(20, 1)

    def test_comm_grows_with_spread(self):
        params = OpenFOAMParams()
        assert params.comm_seconds(20, 5) > params.comm_seconds(20, 1)

    def test_with_updates(self):
        params = OpenFOAMParams().with_updates(total_work=1.0)
        assert params.total_work == 1.0


def run_task(ranks, nodes=5, seed=1, params=None):
    session = Session(cluster_spec=summit_like(nodes + 1), seed=seed)
    client = Client(session)
    env = session.env

    def main(env):
        yield from client.submit_pilot(
            PilotDescription(nodes=nodes, agent_nodes=1)
        )
        tasks = client.submit_tasks(
            [openfoam_task_description(ranks, params=params)]
        )
        yield from client.wait_tasks(tasks)
        return tasks[0]

    task = env.run(env.process(main(env)))
    client.close()
    return task


class TestExecution:
    def test_solo_execution_near_ideal(self):
        params = OpenFOAMParams()
        task = run_task(20, params=params)
        nodes_used = len(task.nodelist)
        ideal = params.ideal_time(20, nodes_used)
        measured = task.result.data["elapsed"]
        # Within 2x of ideal: contention-free run, modest self-demand.
        assert ideal * 0.8 <= measured <= ideal * 2.0

    def test_result_metadata(self):
        task = run_task(41)
        data = task.result.data
        assert data["ranks"] == 41
        assert data["nodes_used"] == len(task.nodelist)
        assert data["compute_seconds"] > 0
        assert data["comm_seconds"] > 0

    def test_rank_profiles_complete(self):
        task = run_task(20)
        profiles = task.result.rank_profiles
        assert len(profiles) == 20
        assert sorted(p.rank for p in profiles) == list(range(20))
        hostnames = {p.hostname for p in profiles}
        assert hostnames <= set(task.nodelist)

    def test_mpi_wait_dominates_for_fast_ranks(self):
        """Fig 5: large portion of time in MPI_Recv and MPI_Waitall."""
        task = run_task(20)
        profiles = task.result.rank_profiles
        # The fastest rank (least compute) waits the most.
        by_compute = sorted(
            profiles, key=lambda p: p.seconds_by_region["solveMomentum"]
        )
        fastest = by_compute[0]
        mpi_wait = (
            fastest.seconds_by_region["MPI_Recv"]
            + fastest.seconds_by_region["MPI_Waitall"]
        )
        mpi_other = (
            fastest.seconds_by_region["MPI_Allreduce"]
            + fastest.seconds_by_region["MPI_Isend"]
        )
        assert mpi_wait > mpi_other

    def test_rank_totals_roughly_flat(self):
        """All ranks take about the same wall time (compute+wait)."""
        task = run_task(20)
        totals = [p.total() for p in task.result.rank_profiles]
        assert max(totals) / min(totals) < 1.5
