"""Synthetic workload generators."""

import numpy as np

from repro.workloads import heterogeneous_bag, strong_scaling_sweep, uniform_bag


def test_uniform_bag():
    bag = uniform_bag(5, duration=10.0, ranks=2)
    assert len(bag) == 5
    assert all(td.ranks == 2 for td in bag)
    assert len({td.name for td in bag}) == 5


def test_heterogeneous_bag_varies(seed=1):
    rng = np.random.default_rng(seed)
    bag = heterogeneous_bag(20, mean_duration=10.0, sigma=0.5, rng=rng)
    ranks = {td.ranks for td in bag}
    assert len(ranks) > 1


def test_strong_scaling_sweep_divides_work():
    sweep = strong_scaling_sweep(100.0, rank_counts=[1, 2, 4], instances=2)
    assert len(sweep) == 6
    by_ranks = {td.ranks: td.model.work_per_rank for td in sweep}
    assert by_ranks[1] == 100.0
    assert by_ranks[4] == 25.0
